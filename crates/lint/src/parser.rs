//! A lightweight item-level Rust parser over the token stream.
//!
//! This is deliberately *not* an expression parser: the interprocedural
//! passes only need item boundaries (modules, fns, impl/trait blocks,
//! structs, use-trees), function signatures (name, visibility, owning
//! impl type), and the token range of each function body. Everything
//! inside a body stays a flat token slice for [`crate::graph`] to scan
//! for call and lock sites.
//!
//! The parser is infallible by design, like the lexer: on a shape it
//! does not understand it skips tokens instead of aborting, so a
//! half-edited file degrades to fewer recognized items, never to a
//! crashed lint run. Items nested inside function bodies (local fns,
//! impls, structs) are parsed too — a laundering wrapper hidden inside
//! a body is still a call-graph node.

use crate::context::SourceFile;
use crate::lexer::{Token, TokenKind};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// Display module path (`core::grid`, `lint::parser`, …).
    pub module: String,
    /// The surrounding `impl`/`trait` type name, if any.
    pub impl_type: Option<String>,
    /// `true` for trait-impl methods and trait default methods —
    /// callable through a trait object, so reachable even when the
    /// concrete receiver cannot be resolved.
    pub via_trait: bool,
    /// `true` only for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `true` when the first parameter is a `self` receiver — the only
    /// functions a method-call expression can dispatch to.
    pub has_self: bool,
    /// Token-index range `[start, end)` of the body, brace-exclusive;
    /// `None` for trait method declarations and extern fns.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// Human-readable qualified name for chains: `core::grid::GridRunner::run`.
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(ty) => format!("{}::{}::{}", self.module, ty, self.name),
            None => format!("{}::{}", self.module, self.name),
        }
    }
}

/// One `struct` item; fields carry the head type name after stripping
/// transparent wrappers (`Arc<Mutex<T>>` → `T`) so the call graph can
/// resolve `self.field.method()` to the field type's impl.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// Type-parameter names (a field typed by one is opaque).
    pub generics: Vec<String>,
    /// `(field_name, head_type_name)` for named fields.
    pub fields: Vec<(String, String)>,
}

/// One leaf of a `use` tree: `binding` is the in-scope name (alias if
/// `as` was used), `target` the imported item's real name, `qualifier`
/// the path segment before it (`collections` in `std::collections::BTreeMap`).
#[derive(Debug, Clone)]
pub struct UseImport {
    /// Name the import binds in this file.
    pub binding: String,
    /// Real name of the imported item.
    pub target: String,
    /// Immediate parent path segment, if any.
    pub qualifier: Option<String>,
}

/// Items recognized in one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All functions, in source order (including nested ones).
    pub fns: Vec<FnItem>,
    /// All structs with named fields.
    pub structs: Vec<StructItem>,
    /// All use-tree leaves.
    pub imports: Vec<UseImport>,
}

/// Wrappers whose single type argument is "the real type" for field
/// resolution: `handles: Arc<Mutex<Pool>>` calls methods of `Pool`
/// (through guards), never of `Arc`.
const TRANSPARENT_WRAPPERS: &[&str] =
    &["Arc", "Rc", "Box", "Mutex", "RwLock", "RefCell", "Cell", "Option", "Vec", "VecDeque"];

/// Keywords that may sit between `pub` and the item keyword without
/// cancelling the pending visibility (`pub const fn`, `pub unsafe fn`,
/// `pub async fn`, `pub extern "C" fn`, `default fn` in impls).
fn is_fn_qualifier(text: &str) -> bool {
    matches!(text, "const" | "unsafe" | "async" | "extern" | "default")
}

/// Derive the display module path from a workspace-relative file path:
/// `crates/core/src/grid.rs` → `core::grid`, `crates/llm/src/lib.rs` →
/// `llm`, `src/main.rs` → `taxoglimpse::main`.
pub fn module_of(rel_path: &str) -> String {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, rest): (&str, &[&str]) = match parts.as_slice() {
        ["crates", krate, "src", rest @ ..] => (krate, rest),
        ["src", rest @ ..] => ("taxoglimpse", rest),
        _ => ("", parts.as_slice()),
    };
    let mut out = String::from(crate_name);
    for (i, seg) in rest.iter().enumerate() {
        let seg = if i + 1 == rest.len() {
            match seg.strip_suffix(".rs") {
                Some(stem) if stem == "lib" || stem == "mod" => continue,
                Some(stem) => stem,
                None => seg,
            }
        } else if *seg == "bin" {
            continue;
        } else {
            seg
        };
        if !out.is_empty() {
            out.push_str("::");
        }
        out.push_str(seg);
    }
    out
}

/// Parse every item in `file`.
pub fn parse_items(file: &SourceFile) -> ParsedFile {
    let mut out = ParsedFile::default();
    let toks = &file.lexed.tokens;
    let module = module_of(&file.rel_path);
    walk(toks, 0, toks.len(), &module, None, &mut out);
    out
}

/// Scan `[i, end)` for items. `impl_ctx` is `(type_name, via_trait)`
/// when inside an impl or trait block. Non-item tokens (expression code
/// in function bodies) are skipped one at a time, which is what lets
/// the walker double as the nested-item scanner for bodies.
fn walk(
    toks: &[Token],
    mut i: usize,
    end: usize,
    module: &str,
    impl_ctx: Option<(&str, bool)>,
    out: &mut ParsedFile,
) {
    let mut is_pub = false;
    while i < end {
        let t = &toks[i];
        if t.kind == TokenKind::Punct {
            if t.text == "#" && text_at(toks, i + 1) == "[" {
                // Attribute: skip, visibility stays pending across it.
                i = skip_balanced_capped(toks, i + 1, end);
                continue;
            }
            is_pub = false;
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            is_pub = false;
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "pub" => {
                is_pub = true;
                i += 1;
                if text_at(toks, i) == "(" {
                    // `pub(crate)` and friends are not public API.
                    is_pub = false;
                    i = skip_balanced_capped(toks, i, end);
                }
            }
            q if is_fn_qualifier(q) => i += 1,
            "fn" if ident_at(toks, i + 1) => {
                i = parse_fn(toks, i, end, module, impl_ctx, is_pub, out);
                is_pub = false;
            }
            "mod" if ident_at(toks, i + 1) => {
                let name = toks[i + 1].text.clone();
                if text_at(toks, i + 2) == "{" {
                    let close = skip_balanced_capped(toks, i + 2, end);
                    let sub = format!("{module}::{name}");
                    walk(toks, i + 3, close.saturating_sub(1), &sub, None, out);
                    i = close;
                } else {
                    i += 2; // `mod name;` — out-of-line, parsed via its own file
                }
                is_pub = false;
            }
            "impl" => {
                i = parse_impl(toks, i, end, module, out);
                is_pub = false;
            }
            "trait" if ident_at(toks, i + 1) => {
                let name = toks[i + 1].text.clone();
                let mut j = i + 2;
                // Bounds/generics up to the body brace.
                while j < end && !matches!(text_at(toks, j).as_str(), "{" | ";") {
                    j = match text_at(toks, j).as_str() {
                        "<" => skip_generics(toks, j, end),
                        "(" | "[" => skip_balanced_capped(toks, j, end),
                        _ => j + 1,
                    };
                }
                if text_at(toks, j) == "{" {
                    let close = skip_balanced_capped(toks, j, end);
                    walk(toks, j + 1, close.saturating_sub(1), module, Some((&name, true)), out);
                    i = close;
                } else {
                    i = j + 1;
                }
                is_pub = false;
            }
            "struct" if ident_at(toks, i + 1) => {
                i = parse_struct(toks, i, end, out);
                is_pub = false;
            }
            "enum" | "union" if ident_at(toks, i + 1) => {
                let mut j = i + 2;
                if text_at(toks, j) == "<" {
                    j = skip_generics(toks, j, end);
                }
                if matches!(text_at(toks, j).as_str(), "{" | "(") {
                    j = skip_balanced_capped(toks, j, end);
                }
                i = j;
                is_pub = false;
            }
            "use" => {
                i = parse_use(toks, i, end, out);
                is_pub = false;
            }
            _ => {
                is_pub = false;
                i += 1;
            }
        }
    }
}

fn text_at(toks: &[Token], i: usize) -> String {
    toks.get(i).map(|t| t.text.clone()).unwrap_or_default()
}

fn ident_at(toks: &[Token], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
}

/// [`crate::context`]'s balanced skip, clamped to `end` so a truncated
/// region cannot run past its enclosing body.
fn skip_balanced_capped(toks: &[Token], open: usize, end: usize) -> usize {
    crate::context::skip_balanced(toks, open).min(end)
}

/// [`skip_generics`] for sibling modules (turbofish hopping in the
/// call scanner).
pub(crate) fn skip_generics_pub(toks: &[Token], open: usize, end: usize) -> usize {
    skip_generics(toks, open, end)
}

/// Given `open` pointing at `<`, return the index past the matching
/// `>`. Nested delimiters (incl. const-generic braces) are skipped as
/// balanced groups; `->` is a single token and never miscounted.
fn skip_generics(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        match toks[j].text.as_str() {
            "<" => {
                depth += 1;
                j += 1;
            }
            ">" => {
                depth -= 1;
                j += 1;
                if depth <= 0 {
                    return j;
                }
            }
            "(" | "[" | "{" => j = skip_balanced_capped(toks, j, end),
            _ => j += 1,
        }
    }
    j
}

/// Parse `fn name …` starting at the `fn` keyword; returns the index
/// past the item. Records the item and recurses into the body for
/// nested items (which are free fns, not methods — `impl_ctx` resets).
fn parse_fn(
    toks: &[Token],
    fn_idx: usize,
    end: usize,
    module: &str,
    impl_ctx: Option<(&str, bool)>,
    is_pub: bool,
    out: &mut ParsedFile,
) -> usize {
    let name_idx = fn_idx + 1;
    let name = toks[name_idx].text.clone();
    let line = toks[fn_idx].line;
    let mut j = name_idx + 1;
    if text_at(toks, j) == "<" {
        j = skip_generics(toks, j, end);
    }
    if text_at(toks, j) != "(" {
        return name_idx + 1; // not a fn item shape; resume scanning
    }
    let params_open = j;
    j = skip_balanced_capped(toks, j, end);

    // A `self` token in the first parameter (`&self`, `&mut self`,
    // `self: Arc<Self>`, …) marks a method; method-call dispatch in the
    // graph only targets these.
    let has_self = toks[params_open + 1..j]
        .iter()
        .take_while(|t| t.text != ",")
        .any(|t| t.kind == TokenKind::Ident && t.text == "self");

    // Return type and where clause up to the body `{` or a `;`.
    let body = loop {
        if j >= end {
            break None;
        }
        match toks[j].text.as_str() {
            "{" => {
                let close = skip_balanced_capped(toks, j, end);
                let range = (j + 1, close.saturating_sub(1));
                j = close;
                break Some(range);
            }
            ";" => {
                j += 1;
                break None;
            }
            "<" => j = skip_generics(toks, j, end),
            "(" | "[" => j = skip_balanced_capped(toks, j, end),
            _ => j += 1,
        }
    };

    let (impl_type, via_trait) = match impl_ctx {
        Some((ty, via)) => (Some(ty.to_owned()), via),
        None => (None, false),
    };
    out.fns.push(FnItem {
        name,
        module: module.to_owned(),
        impl_type,
        via_trait,
        is_pub,
        line,
        has_self,
        body,
    });
    if let Some((lo, hi)) = body {
        walk(toks, lo, hi, module, None, out);
    }
    j
}

/// Parse an `impl` block header starting at the keyword; returns the
/// index past the block. Methods inside inherit the self type name.
fn parse_impl(
    toks: &[Token],
    impl_idx: usize,
    end: usize,
    module: &str,
    out: &mut ParsedFile,
) -> usize {
    let mut j = impl_idx + 1;
    if text_at(toks, j) == "<" {
        j = skip_generics(toks, j, end);
    }
    // Header tokens up to `{`/`;`: track the self-type name (the last
    // path-level identifier, skipping generic args) and whether a
    // top-level `for` marks this as a trait impl.
    let mut type_name: Option<String> = None;
    let mut is_trait_impl = false;
    let mut in_where = false;
    loop {
        if j >= end {
            return j;
        }
        let t = &toks[j];
        match t.text.as_str() {
            "{" => break,
            ";" => return j + 1, // `impl Trait for Type;` shapes
            "for" if t.kind == TokenKind::Ident && !in_where => {
                is_trait_impl = true;
                type_name = None; // the self type is what follows `for`
                j += 1;
            }
            "where" if t.kind == TokenKind::Ident => {
                in_where = true;
                j += 1;
            }
            "<" => j = skip_generics(toks, j, end),
            "(" | "[" => j = skip_balanced_capped(toks, j, end),
            _ => {
                if t.kind == TokenKind::Ident && !in_where && t.text != "dyn" && t.text != "mut" {
                    type_name = Some(t.text.clone());
                }
                j += 1;
            }
        }
    }
    let close = skip_balanced_capped(toks, j, end);
    if let Some(name) = type_name {
        walk(toks, j + 1, close.saturating_sub(1), module, Some((&name, is_trait_impl)), out);
    }
    close
}

/// Parse a `struct` item starting at the keyword; returns the index
/// past it. Only brace-bodied structs contribute fields.
fn parse_struct(toks: &[Token], struct_idx: usize, end: usize, out: &mut ParsedFile) -> usize {
    let name = toks[struct_idx + 1].text.clone();
    let mut j = struct_idx + 2;

    let mut generics = Vec::new();
    if text_at(toks, j) == "<" {
        // Type-parameter names are the identifiers directly after `<`
        // or a depth-1 `,` (bounds after `:` are skipped; lifetimes are
        // not Ident tokens and const params name the *next* ident).
        let close = skip_generics(toks, j, end);
        let mut expect_param = true;
        let mut k = j + 1;
        let mut depth = 1i32;
        while k + 1 < close {
            let t = &toks[k];
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "," if depth == 1 => expect_param = true,
                // Const params are values, not types — the name after
                // `const` must not enter the type-parameter list.
                "const" if t.kind == TokenKind::Ident => expect_param = false,
                _ => {
                    if depth == 1 && expect_param && t.kind == TokenKind::Ident {
                        generics.push(t.text.clone());
                    }
                    if t.kind != TokenKind::Punct || t.text != "," {
                        expect_param = false;
                    }
                }
            }
            k += 1;
        }
        j = close;
    }

    let mut fields = Vec::new();
    match text_at(toks, j).as_str() {
        "{" => {
            let close = skip_balanced_capped(toks, j, end);
            let mut k = j + 1;
            while k + 1 < close {
                // Per-field: attrs, optional visibility, `name : Type`.
                if toks[k].text == "#" && text_at(toks, k + 1) == "[" {
                    k = skip_balanced_capped(toks, k + 1, close);
                    continue;
                }
                if toks[k].text == "pub" {
                    k += 1;
                    if text_at(toks, k) == "(" {
                        k = skip_balanced_capped(toks, k, close);
                    }
                    continue;
                }
                if toks[k].kind == TokenKind::Ident && text_at(toks, k + 1) == ":" {
                    let fname = toks[k].text.clone();
                    let ty_start = k + 2;
                    let mut t = ty_start;
                    while t < close.saturating_sub(1) && toks[t].text != "," {
                        t = match toks[t].text.as_str() {
                            "<" => skip_generics(toks, t, close),
                            "(" | "[" => skip_balanced_capped(toks, t, close),
                            _ => t + 1,
                        };
                    }
                    if let Some(head) = type_head(toks, ty_start, t) {
                        fields.push((fname, head));
                    }
                    k = t + 1;
                    continue;
                }
                k += 1;
            }
            j = close;
        }
        "(" => {
            j = skip_balanced_capped(toks, j, end); // tuple struct: unnamed fields
            if text_at(toks, j) == ";" {
                j += 1;
            }
        }
        ";" => j += 1, // unit struct
        _ => {}
    }
    out.structs.push(StructItem { name, generics, fields });
    j
}

/// The head type name of a field type token range: the last segment of
/// the outermost path, descending through [`TRANSPARENT_WRAPPERS`]
/// (`Arc<Mutex<Pool>>` → `Pool`, `&'a Taxonomy` → `Taxonomy`).
fn type_head(toks: &[Token], mut lo: usize, hi: usize) -> Option<String> {
    loop {
        // Skip leading refs/pointers/lifetimes/`dyn`/`mut` to the path.
        while lo < hi
            && (toks[lo].kind == TokenKind::Lifetime
                || matches!(toks[lo].text.as_str(), "&" | "*" | "dyn" | "mut" | "const"))
        {
            lo += 1;
        }
        // Last segment of the path: idents joined by `::`.
        let mut head: Option<(usize, String)> = None;
        let mut k = lo;
        while k < hi && toks[k].kind == TokenKind::Ident {
            head = Some((k, toks[k].text.clone()));
            if text_at(toks, k + 1) == "::" {
                k += 2;
            } else {
                break;
            }
        }
        let (head_idx, name) = head?;
        if TRANSPARENT_WRAPPERS.contains(&name.as_str()) && text_at(toks, head_idx + 1) == "<" {
            // Descend into the single/first type argument.
            lo = head_idx + 2;
            continue;
        }
        return Some(name);
    }
}

/// Parse a `use` tree starting at the keyword; returns the index past
/// the `;`. Records every leaf with its immediate qualifier.
fn parse_use(toks: &[Token], use_idx: usize, end: usize, out: &mut ParsedFile) -> usize {
    let mut stack: Vec<Vec<String>> = Vec::new();
    let mut cur: Vec<String> = Vec::new();
    let mut alias: Option<String> = None;
    let mut pending_as = false;
    let mut dirty = false;
    let mut j = use_idx + 1;

    let flush = |cur: &mut Vec<String>,
                 alias: &mut Option<String>,
                 dirty: &mut bool,
                 out: &mut ParsedFile| {
        if !*dirty {
            return;
        }
        *dirty = false;
        let alias = alias.take();
        let (target, qualifier) = match cur.last().map(String::as_str) {
            None | Some("*") => return,
            // `use a::b::{self, c}` binds `b` itself.
            Some("self") if cur.len() >= 2 => {
                (cur[cur.len() - 2].clone(), cur.len().checked_sub(3).map(|q| cur[q].clone()))
            }
            Some(last) => {
                (last.to_owned(), cur.len().checked_sub(2).map(|q| cur[q].clone()))
            }
        };
        out.imports.push(UseImport {
            binding: alias.unwrap_or_else(|| target.clone()),
            target,
            qualifier,
        });
    };

    while j < end {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "as") => pending_as = true,
            (TokenKind::Ident, name) => {
                if pending_as {
                    alias = Some(name.to_owned());
                    pending_as = false;
                } else {
                    cur.push(name.to_owned());
                }
                dirty = true;
            }
            (TokenKind::Punct, "{") => stack.push(cur.clone()),
            (TokenKind::Punct, ",") => {
                flush(&mut cur, &mut alias, &mut dirty, out);
                cur = stack.last().cloned().unwrap_or_default();
            }
            (TokenKind::Punct, "}") => {
                flush(&mut cur, &mut alias, &mut dirty, out);
                cur = stack.pop().unwrap_or_default();
            }
            (TokenKind::Punct, ";") => {
                flush(&mut cur, &mut alias, &mut dirty, out);
                return j + 1;
            }
            (TokenKind::Punct, "*") => {
                cur.push("*".to_owned());
                dirty = false;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_items(&SourceFile::new("crates/x/src/lib.rs", src))
    }

    #[test]
    fn modules_impls_and_visibility() {
        let src = r#"
            pub fn top() {}
            pub(crate) fn crate_only() {}
            mod inner {
                pub fn nested() {}
            }
            struct Widget { count: u32 }
            impl Widget {
                pub fn push(&self) {}
                fn private(&self) {}
            }
            impl Clone for Widget {
                fn clone(&self) -> Widget { Widget { count: 0 } }
            }
            trait Runs {
                fn go(&self) { self.halt() }
                fn halt(&self);
            }
        "#;
        let p = parse(src);
        let find = |name: &str| p.fns.iter().find(|f| f.name == name).expect("fn parsed");
        assert!(find("top").is_pub);
        assert!(!find("crate_only").is_pub);
        assert_eq!(find("nested").module, "x::inner");
        assert!(find("nested").is_pub);
        assert_eq!(find("push").impl_type.as_deref(), Some("Widget"));
        assert!(!find("push").via_trait);
        assert_eq!(find("clone").impl_type.as_deref(), Some("Widget"));
        assert!(find("clone").via_trait);
        assert!(find("go").via_trait);
        assert!(find("go").body.is_some());
        assert!(find("halt").body.is_none());
        assert_eq!(find("push").display(), "x::Widget::push");
    }

    #[test]
    fn struct_fields_strip_wrappers() {
        let src = r#"
            struct Server<T, const N: usize> {
                pool: Arc<Mutex<Pool>>,
                cache: Vec<Entry>,
                name: String,
                generic: Box<T>,
                cb: fn(u32) -> u32,
            }
        "#;
        let p = parse(src);
        let s = &p.structs[0];
        assert_eq!(s.name, "Server");
        assert_eq!(s.generics, ["T"]);
        let field = |n: &str| {
            s.fields.iter().find(|(f, _)| f == n).map(|(_, ty)| ty.as_str())
        };
        assert_eq!(field("pool"), Some("Pool"));
        assert_eq!(field("cache"), Some("Entry"));
        assert_eq!(field("name"), Some("String"));
        assert_eq!(field("generic"), Some("T"));
    }

    #[test]
    fn generics_and_where_clauses_do_not_derail() {
        let src = r#"
            pub fn complex<T: Iterator<Item = Vec<u8>>, F>(f: F) -> impl Fn() -> u32
            where
                F: FnMut(&[u8]) -> Result<u32, String>,
            {
                helper()
            }
            fn helper() -> u32 { 0 }
        "#;
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].is_pub);
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn fn_keyword_in_strings_and_comments_is_ignored() {
        let src = r##"
            // fn not_an_item() {}
            /* pub fn also_not() {} */
            fn real() {
                let s = "fn fake(x: u32) {}";
                let r = r#"fn raw_fake() {}"#;
                let _ = (s, r);
            }
        "##;
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn nested_fns_inside_bodies_are_items() {
        let src = "fn outer() { fn inner() { panic!(\"x\") } inner() }";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        // inner's body must be inside outer's.
        let (olo, ohi) = p.fns[0].body.expect("outer body");
        let (ilo, ihi) = p.fns[1].body.expect("inner body");
        assert!(olo < ilo && ihi <= ohi);
    }

    #[test]
    fn use_trees_flatten_with_aliases() {
        let src = "use std::collections::{BTreeMap, BTreeSet as Ordered};\nuse crate::grid::{self, GridRunner};\nuse std::fmt::*;\n";
        let p = parse(src);
        let find = |b: &str| p.imports.iter().find(|u| u.binding == b).expect("import");
        assert_eq!(find("BTreeMap").qualifier.as_deref(), Some("collections"));
        let ordered = find("Ordered");
        assert_eq!(ordered.target, "BTreeSet");
        assert_eq!(find("grid").target, "grid");
        assert_eq!(find("GridRunner").qualifier.as_deref(), Some("grid"));
        assert!(!p.imports.iter().any(|u| u.binding == "*"));
    }

    #[test]
    fn module_paths_from_rel_paths() {
        assert_eq!(module_of("crates/core/src/grid.rs"), "core::grid");
        assert_eq!(module_of("crates/llm/src/lib.rs"), "llm");
        assert_eq!(module_of("crates/bench/src/bin/bench_eval.rs"), "bench::bench_eval");
        assert_eq!(module_of("src/lib.rs"), "taxoglimpse");
        assert_eq!(module_of("src/main.rs"), "taxoglimpse::main");
    }

    #[test]
    fn macro_heavy_and_adversarial_shapes_survive() {
        let src = r#"
            macro_rules! gen {
                ($name:ident) => { fn $name() {} };
            }
            gen!(made);
            fn after_macro<const N: usize>(xs: [u8; N]) -> u8 { xs[0] }
            impl<'a, T: Clone + 'a> Holder<'a, T> where T: Send {
                fn held(&self) -> &T { &self.value }
            }
        "#;
        let p = parse(src);
        // `$name` never becomes an item; the shapes around it do.
        assert!(p.fns.iter().any(|f| f.name == "after_macro"));
        let held = p.fns.iter().find(|f| f.name == "held").expect("held parsed");
        assert_eq!(held.impl_type.as_deref(), Some("Holder"));
    }
}
