//! Per-file lint context: lexed tokens plus the line-level facts every
//! rule needs — which lines are inside `#[cfg(test)]` regions, which
//! lines carry code vs. comments, and the parsed `lint:allow`
//! annotations with their target lines.

use std::collections::BTreeSet;

use crate::lexer::{lex, Lexed, TokenKind};

/// One parsed `// lint:allow(RULE[, reason])` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule id being suppressed (`D003`, …).
    pub rule: String,
    /// The free-text justification after the comma, if any.
    pub reason: Option<String>,
    /// Line the comment itself sits on.
    pub comment_line: u32,
    /// Line of code the suppression applies to: the comment's own line
    /// for trailing comments, the next code line for own-line comments.
    pub target_line: Option<u32>,
}

/// One source file prepared for rule evaluation.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative, `/`-separated path.
    pub rel_path: String,
    /// Token/comment streams.
    pub lexed: Lexed,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// Lines that carry at least one code token.
    pub code_lines: BTreeSet<u32>,
    /// Lines touched by a comment.
    pub comment_lines: BTreeSet<u32>,
    /// Parsed `lint:allow` annotations.
    pub allows: Vec<Allow>,
    /// `(line, detail)` for comments that mention `lint:allow` but do
    /// not parse — surfaced as U001 so typos cannot silently disable a
    /// suppression.
    pub malformed_allows: Vec<(u32, String)>,
    /// Raw source split into lines, for snippets.
    lines: Vec<String>,
}

impl SourceFile {
    /// Lex and index `source`.
    pub fn new(rel_path: &str, source: &str) -> SourceFile {
        let lexed = lex(source);

        let mut code_lines = BTreeSet::new();
        for tok in &lexed.tokens {
            code_lines.insert(tok.line);
            code_lines.insert(tok.end_line);
        }
        let mut comment_lines = BTreeSet::new();
        for c in &lexed.comments {
            for line in c.line..=c.end_line {
                comment_lines.insert(line);
            }
        }

        let test_ranges = find_test_ranges(&lexed);
        let (allows, malformed_allows) = parse_allows(&lexed, &code_lines);

        SourceFile {
            rel_path: rel_path.to_owned(),
            lexed,
            test_ranges,
            code_lines,
            comment_lines,
            allows,
            malformed_allows,
            lines: source.lines().map(str::to_owned).collect(),
        }
    }

    /// `true` iff `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// A trimmed, length-capped excerpt of `line` for findings.
    pub fn snippet(&self, line: u32) -> String {
        let raw = self
            .lines
            .get(line.saturating_sub(1) as usize)
            .map(|s| s.trim())
            .unwrap_or_default();
        let mut out: String = raw.chars().take(96).collect();
        if out.len() < raw.len() {
            out.push('…');
        }
        out
    }

    /// `true` iff a comment touches `line`.
    pub fn has_comment_on(&self, line: u32) -> bool {
        self.comment_lines.contains(&line)
    }

    /// `true` iff a code token starts or ends on `line`.
    pub fn has_code_on(&self, line: u32) -> bool {
        self.code_lines.contains(&line)
    }
}

/// Locate `#[cfg(test)]` attributes and the item they cover.
fn find_test_ranges(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !matches_cfg_test(lexed, i) {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        let mut j = i + 7; // past `#` `[` `cfg` `(` `test` `)` `]`

        // Skip any further attributes (`#[test]`, `#[allow(...)]`, …).
        while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
            j = skip_balanced(toks, j + 1);
        }

        // The item body: first `{` at delimiter depth 0 opens a region
        // to its matching `}`; a `;` at depth 0 ends a braceless item
        // (`mod tests;`).
        let mut depth = 0i32;
        let mut end_line = start_line;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        j = skip_balanced(toks, j);
                        end_line =
                            toks.get(j.saturating_sub(1)).map(|t| t.end_line).unwrap_or(t.line);
                        break;
                    }
                    ";" if depth == 0 => {
                        end_line = t.line;
                        j += 1;
                        break;
                    }
                    _ => {}
                }
            }
            end_line = t.end_line;
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j.max(i + 1);
    }
    ranges
}

/// `true` iff the token sequence starting at `i` spells `#[cfg(test)]`.
fn matches_cfg_test(lexed: &Lexed, i: usize) -> bool {
    const PATTERN: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    lexed
        .tokens
        .get(i..i + PATTERN.len())
        .is_some_and(|w| w.iter().zip(PATTERN).all(|(t, p)| t.text == p))
}

/// Given `open` pointing at `{`/`[`/`(`, return the index just past the
/// matching closer (or the end of input if unbalanced).
pub(crate) fn skip_balanced(toks: &[crate::lexer::Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].kind == TokenKind::Punct {
            match toks[j].text.as_str() {
                "{" | "[" | "(" => depth += 1,
                "}" | "]" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    j
}

/// Extract `lint:allow(...)` annotations from comments.
fn parse_allows(
    lexed: &Lexed,
    code_lines: &BTreeSet<u32>,
) -> (Vec<Allow>, Vec<(u32, String)>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    // Map a comment to the line of code it annotates: its own line when
    // it trails code, otherwise the first code line after it.
    let next_code_line = |after: u32| -> Option<u32> {
        code_lines.range(after + 1..).next().copied()
    };

    for c in &lexed.comments {
        // An annotation must be the comment's leading content (after
        // the `//`/`/*`/doc markers); a prose *mention* of lint:allow
        // elsewhere in a comment is not an annotation attempt.
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix("lint:allow") else { continue };
        let parsed = parse_allow_args(rest);
        match parsed {
            Ok((rule, reason)) => {
                let trailing = code_lines.contains(&c.line);
                let target_line =
                    if trailing { Some(c.line) } else { next_code_line(c.end_line) };
                allows.push(Allow { rule, reason, comment_line: c.line, target_line });
            }
            Err(detail) => malformed.push((c.line, detail)),
        }
    }
    (allows, malformed)
}

/// Parse the `(RULE[, reason])` tail of an annotation.
fn parse_allow_args(rest: &str) -> Result<(String, Option<String>), String> {
    let rest = rest.trim_start();
    let Some(inner) = rest.strip_prefix('(') else {
        return Err("expected `(` after lint:allow".to_owned());
    };
    let Some(close) = inner.find(')') else {
        return Err("unclosed lint:allow(...)".to_owned());
    };
    let body = &inner[..close];
    let (rule, reason) = match body.split_once(',') {
        Some((r, reason)) => (r.trim(), Some(reason.trim().to_owned())),
        None => (body.trim(), None),
    };
    let valid_id = rule.len() == 4
        && rule.starts_with(|c: char| c.is_ascii_uppercase())
        && rule[1..].bytes().all(|b| b.is_ascii_digit());
    if !valid_id {
        return Err(format!("`{rule}` is not a rule id (expected e.g. D003)"));
    }
    if reason.as_deref().is_some_and(str::is_empty) {
        return Err("empty reason after comma".to_owned());
    }
    Ok((rule.to_owned(), reason.map(|r| r.to_owned())))
}

/// One registered suppression plus whether it ever fired.
#[derive(Debug)]
struct AllowEntry {
    file: String,
    rule: String,
    target_line: Option<u32>,
    comment_line: u32,
    used: bool,
}

/// Tracks which allows matched a finding, so leftovers become U001.
#[derive(Debug, Default)]
pub struct AllowLedger {
    entries: Vec<AllowEntry>,
}

impl AllowLedger {
    /// Register every allow in `file` as initially unused.
    pub fn register(&mut self, file: &SourceFile) {
        for a in &file.allows {
            self.entries.push(AllowEntry {
                file: file.rel_path.clone(),
                rule: a.rule.clone(),
                target_line: a.target_line,
                comment_line: a.comment_line,
                used: false,
            });
        }
    }

    /// If `rel_path` has an allow for `rule` covering `line`, consume
    /// it and return `true` (the finding is suppressed).
    pub fn try_suppress(&mut self, rel_path: &str, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            if e.file == rel_path && e.rule == rule && e.target_line == Some(line) {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Number of allows that suppressed at least one finding.
    pub fn used_count(&self) -> usize {
        self.entries.iter().filter(|e| e.used).count()
    }

    /// `(file, comment_line, rule)` for allows that never fired.
    pub fn unused(&self) -> impl Iterator<Item = (&str, u32, &str)> {
        self.entries
            .iter()
            .filter(|e| !e.used)
            .map(|e| (e.file.as_str(), e.comment_line, e.rule.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_region_covers_its_braces() {
        let src = "fn lib_code() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::new("x.rs", src);
        assert_eq!(f.test_ranges, vec![(3, 6)]);
        assert!(!f.in_test(1));
        assert!(f.in_test(5));
        assert!(!f.in_test(7));
    }

    #[test]
    fn cfg_test_single_fn_with_extra_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() {\n    body();\n}\nfn real() {}\n";
        let f = SourceFile::new("x.rs", src);
        assert_eq!(f.test_ranges, vec![(1, 5)]);
        assert!(!f.in_test(6));
    }

    #[test]
    fn cfg_test_braceless_module() {
        let f = SourceFile::new("x.rs", "#[cfg(test)]\nmod tests;\nfn real() {}\n");
        assert_eq!(f.test_ranges, vec![(1, 2)]);
    }

    #[test]
    fn allow_targets_trailing_and_own_line() {
        let src = "let a = risky(); // lint:allow(D003, cache lock)\n// lint:allow(D001, hot path)\nlet b = more();\n";
        let f = SourceFile::new("x.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "D003");
        assert_eq!(f.allows[0].target_line, Some(1));
        assert_eq!(f.allows[0].reason.as_deref(), Some("cache lock"));
        assert_eq!(f.allows[1].rule, "D001");
        assert_eq!(f.allows[1].target_line, Some(3));
    }

    #[test]
    fn malformed_allows_are_reported() {
        let src = "// lint:allow D003 forgot parens\nlet a = 1;\n// lint:allow(D3)\nlet b = 2;\n";
        let f = SourceFile::new("x.rs", src);
        assert!(f.allows.is_empty());
        assert_eq!(f.malformed_allows.len(), 2);
    }

    #[test]
    fn ledger_tracks_usage() {
        let src = "let a = x.unwrap(); // lint:allow(D003, demo)\nlet b = 1; // lint:allow(D001, never fires)\n";
        let f = SourceFile::new("x.rs", src);
        let mut ledger = AllowLedger::default();
        ledger.register(&f);
        assert!(ledger.try_suppress("x.rs", "D003", 1));
        assert!(!ledger.try_suppress("x.rs", "D002", 1));
        assert_eq!(ledger.used_count(), 1);
        assert_eq!(ledger.unused().count(), 1);
    }
}
