//! `taxoglimpse-lint` — the in-tree determinism & soundness linter.
//!
//! The workspace's credibility rests on byte-identical artifacts:
//! reports are digested (`reports_digest`), datasets replayed, and the
//! parallel grid proven equal to sequential. This crate enforces the
//! invariants behind those guarantees mechanically on every PR:
//!
//! | rule | invariant |
//! |------|-----------|
//! | D001 | no `HashMap`/`HashSet` in deterministic code — ordered containers or a justified suppression |
//! | D002 | no `SystemTime::now`/`Instant::now`/`RandomState` outside `crates/bench` and `#[cfg(test)]` |
//! | D003 | no `.unwrap()` / context-free `.expect(…)` in library code |
//! | C001 | atomic `Ordering`, `unsafe`, `static mut` need adjacent justification comments |
//! | M001 | no bare `_` arm over project enums in scoring/parse matches |
//! | U001 | `lint:allow` annotations must parse and must fire |
//! | D101 | deterministic roots must not *transitively* reach a D001/D002 source |
//! | L001 | the workspace lock-order graph must be acyclic |
//! | L002 | no model call (`answer`/`answer_batch`) while a lock is held |
//! | P001 | no panic-family site reachable from a public library entry point |
//! | S001 | the linter's own path registries must track the workspace |
//!
//! The first six are token-local. The interprocedural rules run over a
//! workspace call graph built by [`parser`] (item-level, no expression
//! AST) and [`graph`] (name/type-based call resolution); see [`passes`]
//! for the propagation algorithms and DESIGN.md §11 for the soundness
//! trade-offs.
//!
//! Findings can be suppressed inline with `// lint:allow(<rule>, <reason>)`
//! as the comment's leading content — on the offending line (trailing)
//! or the line above (own-line). Suppressions that never fire are
//! themselves findings, so dead annotations cannot accumulate.
//!
//! The analysis is token-based (see [`lexer`]): trigger words inside
//! string literals, raw strings, char literals, or comments never fire.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod context;
pub mod findings;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod rules;

use context::{AllowLedger, SourceFile};
pub use findings::{
    explain_rule, validate_report, Finding, LintReport, SchemaError, PASSES, RULES,
    SCHEMA_VERSION,
};
pub use graph::CallGraph;

/// An I/O failure while walking or reading the workspace.
#[derive(Debug)]
pub struct LintError {
    /// The path being read when the error occurred.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for LintError {}

/// Lint in-memory `(rel_path, source)` pairs — the entry point fixture
/// tests use, and the core `lint_workspace` delegates to.
pub fn lint_sources(sources: &[(String, String)]) -> LintReport {
    let files: Vec<SourceFile> =
        sources.iter().map(|(path, src)| SourceFile::new(path, src)).collect();

    // Pass 1: project-wide facts — enum names for M001, suppression
    // registrations for U001.
    let mut enums = BTreeSet::new();
    let mut ledger = AllowLedger::default();
    for f in &files {
        rules::collect_enums(f, &mut enums);
        ledger.register(f);
    }

    // Pass 2: per-file token rules.
    let mut findings = Vec::new();
    for f in &files {
        rules::run_rules(f, &enums, &mut ledger, &mut findings);
    }

    // Pass 3: interprocedural — parse items, build the call graph, run
    // the reachability and lock passes over it.
    let parsed: Vec<parser::ParsedFile> = files.iter().map(parser::parse_items).collect();
    let graph = CallGraph::build(&files, &parsed);
    passes::run_passes(&files, &graph, &mut ledger, &mut findings);

    // Pass 4: the linter checks itself, then surfaces allows that never
    // fired.
    rules::self_check(&files, &mut findings);
    rules::unused_allow_findings(&ledger, &mut findings);

    let mut report = LintReport {
        findings,
        files_scanned: files.len(),
        allows_used: ledger.used_count(),
    };
    report.sort();
    report
}

/// Lint every `.rs` source under `root`'s workspace layout: the root
/// crate's `src/` plus each `crates/*/src/`. Test trees (`tests/`,
/// `benches/`, `examples/`) are out of scope by construction.
pub fn lint_workspace(root: &Path) -> Result<LintReport, LintError> {
    Ok(lint_sources(&collect_workspace_sources(root)?))
}

/// Serialize the workspace call graph (`--graph`): the same file set
/// `lint_workspace` scans, parsed and resolved, rendered as graph
/// schema v1 JSON.
pub fn workspace_graph_json(root: &Path) -> Result<String, LintError> {
    let sources = collect_workspace_sources(root)?;
    let files: Vec<SourceFile> =
        sources.iter().map(|(path, src)| SourceFile::new(path, src)).collect();
    let parsed: Vec<parser::ParsedFile> = files.iter().map(parser::parse_items).collect();
    let graph = CallGraph::build(&files, &parsed);
    Ok(graph.to_json(&files).render_pretty() + "\n")
}

/// Read every in-scope `.rs` file under `root` as `(rel_path, text)`.
pub fn collect_workspace_sources(
    root: &Path,
) -> Result<Vec<(String, String)>, LintError> {
    let mut rel_paths = Vec::new();
    collect_rs_files(root, &root.join("src"), &mut rel_paths)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = read_dir_sorted(&crates_dir)?
            .into_iter()
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs_files(root, &member.join("src"), &mut rel_paths)?;
        }
    }
    rel_paths.sort();

    let mut sources = Vec::with_capacity(rel_paths.len());
    for rel in rel_paths {
        let abs = root.join(&rel);
        let text = fs::read_to_string(&abs)
            .map_err(|source| LintError { path: abs.clone(), source })?;
        sources.push((rel.replace('\\', "/"), text));
    }
    Ok(sources)
}

/// Recursively gather `.rs` files under `dir` as root-relative paths.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<String>,
) -> Result<(), LintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            collect_rs_files(root, &entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            let rel = entry.strip_prefix(root).unwrap_or(&entry);
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// `read_dir` with deterministic (sorted) order.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let iter = fs::read_dir(dir)
        .map_err(|source| LintError { path: dir.to_path_buf(), source })?;
    let mut entries = Vec::new();
    for entry in iter {
        let entry = entry.map_err(|source| LintError { path: dir.to_path_buf(), source })?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}
