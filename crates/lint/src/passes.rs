//! The interprocedural passes: D101 (transitive non-determinism), L001
//! (lock-order cycles), L002 (model calls under a held lock), P001
//! (panic reachability from public entry points).
//!
//! All four run over the [`crate::graph::CallGraph`]; findings carry
//! the propagation chain (outermost context first) and suppress through
//! the same `lint:allow` ledger as the token rules — an allow targets
//! the finding's anchor line (the entropy source, the lock acquisition,
//! the panic site).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::context::{AllowLedger, SourceFile};
use crate::findings::Finding;
use crate::graph::CallGraph;

/// Core modules whose functions form the deterministic root set for
/// D101, together with [`D101_ROOT_PREFIXES`]. Hand-maintained; the
/// S001 self-check fails `--check` if an entry goes stale.
pub const D101_ROOT_FILES: &[&str] = &[
    "crates/core/src/eval.rs",
    "crates/core/src/parse.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/grid.rs",
    "crates/core/src/hier.rs",
    "crates/core/src/workload.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/resilience.rs",
    "crates/core/src/serve/mod.rs",
    "crates/core/src/serve/admission.rs",
    "crates/core/src/serve/batcher.rs",
    "crates/core/src/serve/sim.rs",
    "crates/core/src/serve/traffic.rs",
];

/// Whole crates that are deterministic roots for D101.
pub const D101_ROOT_PREFIXES: &[&str] =
    &["crates/synth/src/", "crates/taxonomy/src/", "crates/report/src/"];

/// `true` iff functions in `rel_path` are D101 roots.
pub fn is_d101_root(rel_path: &str) -> bool {
    D101_ROOT_FILES.contains(&rel_path)
        || D101_ROOT_PREFIXES.iter().any(|p| rel_path.starts_with(p))
}

/// `true` iff `rel_path` is binary-target code (panics are acceptable
/// CLI style there; D003 exempts it for the same reason).
fn is_bin(rel_path: &str) -> bool {
    rel_path.contains("/src/bin/") || rel_path.ends_with("src/main.rs")
}

/// Run all four passes, appending unsuppressed findings.
pub fn run_passes(
    files: &[SourceFile],
    graph: &CallGraph,
    ledger: &mut AllowLedger,
    findings: &mut Vec<Finding>,
) {
    let adj: Vec<Vec<usize>> = (0..graph.nodes.len()).map(|i| graph.callees(i)).collect();
    d101(files, graph, &adj, ledger, findings);
    locks(files, graph, &adj, ledger, findings);
    p001(files, graph, &adj, ledger, findings);
}

/// Multi-source BFS; returns `(dist, parent)` with `usize::MAX` for
/// unreached nodes and `parent[root] == root`.
fn bfs(adj: &[Vec<usize>], roots: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let n = adj.len();
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for &r in roots {
        if dist[r] == usize::MAX {
            dist[r] = 0;
            parent[r] = r;
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// Root-to-node display chain following BFS parents.
fn chain_to(graph: &CallGraph, parent: &[usize], mut node: usize) -> Vec<String> {
    let mut rev = vec![graph.nodes[node].display.clone()];
    while parent[node] != node {
        node = parent[node];
        rev.push(graph.nodes[node].display.clone());
    }
    rev.reverse();
    rev
}

/// D101 — deterministic code must not transitively reach a D001/D002
/// source. Distance-0 sources (the source sits in a root file itself)
/// are the token rules' domain and are skipped to avoid double-reports.
fn d101(
    files: &[SourceFile],
    graph: &CallGraph,
    adj: &[Vec<usize>],
    ledger: &mut AllowLedger,
    findings: &mut Vec<Finding>,
) {
    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            graph.nodes[i].has_body && is_d101_root(&files[graph.nodes[i].file].rel_path)
        })
        .collect();
    let (dist, parent) = bfs(adj, &roots);

    let mut seen = BTreeSet::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if dist[i] == usize::MAX || dist[i] == 0 {
            continue;
        }
        let file = &files[node.file];
        for src in &graph.facts[i].det_sources {
            if !seen.insert((node.file, src.line, src.what.clone())) {
                continue;
            }
            if ledger.try_suppress(&file.rel_path, "D101", src.line) {
                continue;
            }
            let mut chain = chain_to(graph, &parent, i);
            chain.push(src.what.clone());
            findings.push(Finding {
                file: file.rel_path.clone(),
                line: src.line,
                rule: "D101",
                message: format!(
                    "`{}` ({} source) is transitively reachable from deterministic code via {}",
                    src.what,
                    src.rule,
                    chain.first().map(String::as_str).unwrap_or("?"),
                ),
                snippet: file.snippet(src.line),
                pass: "reach",
                chain,
            });
        }
    }
}

/// L001 + L002 — lock discipline. Held-lock ranges come from the graph;
/// lock sets and model reachability are propagated to a fixpoint over
/// call edges.
fn locks(
    files: &[SourceFile],
    graph: &CallGraph,
    adj: &[Vec<usize>],
    ledger: &mut AllowLedger,
    findings: &mut Vec<Finding>,
) {
    let n = graph.nodes.len();

    // Transitive lock sets: every lock a call into `i` may acquire.
    let mut all_locks: Vec<BTreeSet<u32>> = (0..n)
        .map(|i| graph.facts[i].locks.iter().map(|l| l.lock).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            for &c in &adj[i] {
                if !all_locks[c].is_empty() {
                    let add: Vec<u32> =
                        all_locks[c].iter().copied().filter(|l| !all_locks[i].contains(l)).collect();
                    if !add.is_empty() {
                        all_locks[i].extend(add);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Model reachability (for L002): a direct protocol call, or any
    // callee that reaches one.
    let mut reaches_model: Vec<bool> =
        (0..n).map(|i| !graph.facts[i].model_sinks.is_empty()).collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            if !reaches_model[i] && adj[i].iter().any(|&c| reaches_model[c]) {
                reaches_model[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Lock-order edges: (held, acquired) → witness. First writer wins,
    // and iteration order is deterministic, so witnesses are stable.
    type Witness = (usize, u32, Vec<String>); // (file, line, chain)
    let mut edges: BTreeMap<(u32, u32), Witness> = BTreeMap::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let facts = &graph.facts[i];
        for lock in &facts.locks {
            let held_over = |tok: usize| tok > lock.tok && tok >= lock.hold.0 && tok < lock.hold.1;
            for other in &facts.locks {
                if other.tok != lock.tok && held_over(other.tok) {
                    edges.entry((lock.lock, other.lock)).or_insert((
                        node.file,
                        other.line,
                        vec![node.display.clone()],
                    ));
                }
            }
            for call in &facts.calls {
                if !held_over(call.tok) {
                    continue;
                }
                for &g in &call.callees {
                    for &acquired in &all_locks[g] {
                        edges.entry((lock.lock, acquired)).or_insert((
                            node.file,
                            call.line,
                            vec![node.display.clone(), graph.nodes[g].display.clone()],
                        ));
                    }
                }
            }
        }
    }

    // L001: any cycle in the lock-order graph. SCCs via iterative
    // path-based search would be overkill at this size; a simple DFS
    // per unvisited lock id with an on-stack set finds each cycle, and
    // dedup by cycle key reports it once.
    let lock_adj: BTreeMap<u32, Vec<u32>> = {
        let mut m: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for &(a, b) in edges.keys() {
            m.entry(a).or_default().push(b);
        }
        m
    };
    let mut reported = BTreeSet::new();
    for &start in lock_adj.keys() {
        // DFS from each lock; a back-edge onto the current path is a cycle.
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        let mut on_path: BTreeSet<u32> = [start].into_iter().collect();
        let mut visited_from_start: BTreeSet<u32> = BTreeSet::new();
        while let Some((u, next_i)) = stack.last_mut() {
            let u = *u;
            let succs = lock_adj.get(&u).map(Vec::as_slice).unwrap_or_default();
            if *next_i >= succs.len() {
                stack.pop();
                path.pop();
                on_path.remove(&u);
                continue;
            }
            let v = succs[*next_i];
            *next_i += 1;
            if on_path.contains(&v) {
                // Cycle: the path suffix from v back to v.
                let pos = path.iter().position(|&x| x == v).unwrap_or(0);
                let mut cycle: Vec<u32> = path[pos..].to_vec();
                // Canonical rotation: smallest lock id first.
                let min_pos = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &l)| l)
                    .map(|(p, _)| p)
                    .unwrap_or(0);
                cycle.rotate_left(min_pos);
                if !reported.insert(cycle.clone()) {
                    continue;
                }
                let names: Vec<String> = cycle
                    .iter()
                    .chain(cycle.first())
                    .map(|&l| graph.lock_names[l as usize].clone())
                    .collect();
                let key = (cycle[0], cycle[1 % cycle.len()]);
                let Some((wfile, wline, via)) = edges.get(&key) else { continue };
                let file = &files[*wfile];
                if ledger.try_suppress(&file.rel_path, "L001", *wline) {
                    continue;
                }
                findings.push(Finding {
                    file: file.rel_path.clone(),
                    line: *wline,
                    rule: "L001",
                    message: format!(
                        "lock-order cycle: {} (this edge acquired in {})",
                        names.join(" → "),
                        via.join(" → "),
                    ),
                    snippet: file.snippet(*wline),
                    pass: "locks",
                    chain: names,
                });
                continue;
            }
            if visited_from_start.insert(v) {
                stack.push((v, 0));
                path.push(v);
                on_path.insert(v);
            }
        }
    }

    // L002: a model call (direct or transitive) inside a hold range.
    for (i, node) in graph.nodes.iter().enumerate() {
        let facts = &graph.facts[i];
        let file = &files[node.file];
        for lock in &facts.locks {
            let in_hold = |tok: usize| tok >= lock.hold.0 && tok < lock.hold.1;
            let lock_name = &graph.lock_names[lock.lock as usize];

            // Direct protocol call under the hold?
            let direct = facts.model_sinks.iter().find(|s| in_hold(s.tok));
            // Or a call whose callee transitively makes one?
            let transitive = facts
                .calls
                .iter()
                .find(|c| in_hold(c.tok) && c.callees.iter().any(|&g| reaches_model[g]));

            let chain = if let Some(sink) = direct {
                vec![node.display.clone(), sink.name.clone()]
            } else if let Some(call) = transitive {
                let g = call
                    .callees
                    .iter()
                    .copied()
                    .find(|&g| reaches_model[g])
                    .unwrap_or_default();
                // Shortest path from g to a node with a direct sink.
                let (dist, parent) = bfs(adj, &[g]);
                let target = (0..graph.nodes.len())
                    .filter(|&t| dist[t] != usize::MAX && !graph.facts[t].model_sinks.is_empty())
                    .min_by_key(|&t| dist[t]);
                let mut chain = vec![node.display.clone()];
                if let Some(t) = target {
                    chain.extend(chain_to(graph, &parent, t));
                    if let Some(sink) = graph.facts[t].model_sinks.first() {
                        chain.push(sink.name.clone());
                    }
                }
                chain
            } else {
                continue;
            };

            if ledger.try_suppress(&file.rel_path, "L002", lock.line) {
                continue;
            }
            findings.push(Finding {
                file: file.rel_path.clone(),
                line: lock.line,
                rule: "L002",
                message: format!(
                    "model call while `{lock_name}` is held — the lock serializes every \
                     in-flight request behind the slowest model turn",
                ),
                snippet: file.snippet(lock.line),
                pass: "locks",
                chain,
            });
        }
    }
}

/// P001 — panic-family sites reachable from public entry points.
/// Library `unwrap()`/`expect()` stay D003's business (token-local);
/// this pass covers what D003 cannot see across calls.
fn p001(
    files: &[SourceFile],
    graph: &CallGraph,
    adj: &[Vec<usize>],
    ledger: &mut AllowLedger,
    findings: &mut Vec<Finding>,
) {
    let roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let node = &graph.nodes[i];
            node.has_body
                && !is_bin(&files[node.file].rel_path)
                && (node.is_pub || node.via_trait)
        })
        .collect();
    let (dist, parent) = bfs(adj, &roots);

    let mut seen = BTreeSet::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if dist[i] == usize::MAX {
            continue;
        }
        let file = &files[node.file];
        if is_bin(&file.rel_path) {
            continue; // panics in CLI glue are acceptable style
        }
        for sink in &graph.facts[i].panic_sinks {
            if !seen.insert((node.file, sink.line, sink.what.clone())) {
                continue;
            }
            if ledger.try_suppress(&file.rel_path, "P001", sink.line) {
                continue;
            }
            let mut chain = chain_to(graph, &parent, i);
            let entry = chain.first().cloned().unwrap_or_default();
            chain.push(sink.what.clone());
            findings.push(Finding {
                file: file.rel_path.clone(),
                line: sink.line,
                rule: "P001",
                message: format!(
                    "`{}` is reachable from public entry `{entry}` — return an error or \
                     justify the invariant",
                    sink.what,
                ),
                snippet: file.snippet(sink.line),
                pass: "reach",
                chain,
            });
        }
    }
}
