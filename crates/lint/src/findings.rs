//! Finding and report types, their JSON encoding, the human-readable
//! table, and schema validation for `--validate`.
//!
//! Schema v2 (PR 8) adds two fields to every finding — `pass`, naming
//! the analysis stage that produced it, and `chain`, the propagation
//! path for interprocedural findings (empty for token-local rules).
//! All v1 fields are unchanged.

use std::fmt;

use taxoglimpse_json::{Json, JsonError};

/// Report schema version written into the JSON document; bump on any
/// incompatible change to the finding fields.
pub const SCHEMA_VERSION: u64 = 2;

/// Analysis stages findings can come from; `pass` is validated against
/// this list.
pub const PASSES: &[&str] = &["token", "meta", "reach", "locks", "selfcheck"];

/// Every rule the engine knows, as `(id, summary)` pairs. `U001` is
/// the meta-rule for unused or malformed `lint:allow` annotations,
/// `S001` the self-check for stale rule configuration; neither can be
/// suppressed.
pub const RULES: &[(&str, &str)] = &[
    ("D001", "no HashMap/HashSet in deterministic (serialized/digested) paths; use BTreeMap/BTreeSet or sort at emission"),
    ("D002", "no SystemTime::now/Instant::now/RandomState entropy outside crates/bench and #[cfg(test)]"),
    ("D003", "no unwrap()/short expect() in library code without lint:allow(D003, reason)"),
    ("C001", "atomic Ordering / unsafe / static mut requires an adjacent justification comment"),
    ("M001", "no bare `_` wildcard arm over project enums in scoring/parse matches"),
    ("U001", "lint:allow annotation is unused or malformed"),
    ("D101", "deterministic code must not transitively reach a D001/D002 entropy source through any call chain"),
    ("L001", "no cycle in the workspace lock-order graph (AB/BA acquisition patterns deadlock)"),
    ("L002", "no model call (answer/answer_batch) or chunk evaluation while a Mutex guard is held"),
    ("P001", "no panic!/unreachable!/unchecked-op reachable from public library entry points"),
    ("S001", "rule path lists (M001_PATHS, D101 roots) must match the workspace on disk"),
];

/// Long-form documentation for `--explain <rule>`: `(id, doc,
/// rationale, failing example, passing example)`.
pub const EXPLAIN: &[(&str, &str, &str, &str, &str)] = &[
    (
        "D001",
        "Unordered hash containers (HashMap/HashSet) are forbidden in non-test code.",
        "Reports, datasets, and bench artifacts are digested byte-for-byte; hash-iteration order is seeded per process and would silently break replay. Use BTreeMap/BTreeSet, or suppress with a reason proving the container never reaches serialized output.",
        "use std::collections::HashMap;\nfn tally() -> HashMap<String, u32> { HashMap::new() }",
        "use std::collections::BTreeMap;\nfn tally() -> BTreeMap<String, u32> { BTreeMap::new() }",
    ),
    (
        "D002",
        "Wall-clock and entropy sources (SystemTime::now, Instant::now, RandomState) are forbidden outside crates/bench.",
        "Every simulated latency, backoff, and fault draw is derived from seeds so reruns are bit-identical; one wall-clock read anywhere in the pipeline breaks that. Benches measure real time, so crates/bench is exempt.",
        "fn stamp() -> std::time::Instant { std::time::Instant::now() }",
        "fn stamp(clock: &VirtualClock) -> f64 { clock.now_s() }",
    ),
    (
        "D003",
        ".unwrap() and context-free .expect(…) are forbidden in library code.",
        "A panic in library code takes down every worker sharing the process; errors must carry enough context to debug a failed replay. expect() with a message of >= 10 chars stating the violated invariant passes; bins and tests are exempt.",
        "fn head(v: &[u32]) -> u32 { *v.first().unwrap() }",
        "fn head(v: &[u32]) -> Option<u32> { v.first().copied() }",
    ),
    (
        "C001",
        "Atomic memory orderings, unsafe blocks, and static mut need an adjacent justification comment.",
        "These constructs encode concurrency contracts the compiler cannot check; the justification comment (same line or the line above) is the reviewable record of why the contract holds.",
        "counter.fetch_add(1, Ordering::Relaxed);",
        "// Relaxed: monotonic counter, no ordering needed.\ncounter.fetch_add(1, Ordering::Relaxed);",
    ),
    (
        "M001",
        "Bare `_` arms over project enums are forbidden in scoring/parse matches (M001_PATHS files).",
        "When a new Outcome or answer variant is added, every scoring match must be forced to decide how to count it; a wildcard arm silently scores new variants as whatever the default was.",
        "match outcome { Outcome::Correct => 1, _ => 0 }",
        "match outcome { Outcome::Correct => 1, Outcome::Missed | Outcome::Wrong => 0 }",
    ),
    (
        "U001",
        "Every lint:allow annotation must parse and must suppress at least one finding.",
        "Dead suppressions accumulate and hide real regressions: a refactor that moves the offending line leaves the allow behind, silently disarmed. Malformed annotations are flagged so a typo cannot disable a suppression.",
        "// lint:allow(D003, nothing here unwraps)\nfn f() -> u32 { 1 }",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(D003, demo fixture)",
    ),
    (
        "D101",
        "A function reachable from deterministic code must not transitively reach a D001/D002 entropy source.",
        "Token-local rules stop at the call site: a one-line wrapper in an exempt location (crates/bench) launders Instant::now past D002. D101 walks the workspace call graph from the deterministic root set (core eval/parse/metrics/grid/shard/cache/resilience, synth, taxonomy, report) and reports the full propagation chain. Sites carrying a lint:allow(D001/D002) are trusted — their reason documents why the source is safe.",
        "// crates/core/src/eval.rs\nfn score() -> f64 { stamp() }\n// crates/bench/src/util.rs (D002-exempt)\npub fn stamp() -> f64 { elapsed_s(Instant::now()) }",
        "// crates/core/src/eval.rs\nfn score(clock: &VirtualClock) -> f64 { clock.now_s() }",
    ),
    (
        "L001",
        "The workspace lock-order graph must be acyclic.",
        "If one code path acquires lock A then B while another acquires B then A, two threads can deadlock. Held-lock sets are propagated along call edges, so the AB and BA acquisitions may live in different functions or crates and still form the cycle.",
        "fn ab(&self) { let _a = self.a.lock().expect(\"a\"); let _b = self.b.lock().expect(\"b\"); }\nfn ba(&self) { let _b = self.b.lock().expect(\"b\"); let _a = self.a.lock().expect(\"a\"); }",
        "fn ab(&self) { let _a = self.a.lock().expect(\"a\"); let _b = self.b.lock().expect(\"b\"); }\nfn also_ab(&self) { let _a = self.a.lock().expect(\"a\"); let _b = self.b.lock().expect(\"b\"); }",
    ),
    (
        "L002",
        "No model call (answer/answer_batch, or anything that transitively makes one) while a Mutex guard is held.",
        "A model call is the slowest operation in the system; holding a lock across it serializes every worker behind one in-flight request and invites lock-order inversions with the model's own internal locks. Deliberate single-lock wrappers (e.g. a session serializer) suppress with the reason documenting why the hold is the point.",
        "let g = self.stats.lock().expect(\"stats lock\");\nlet r = self.inner.answer(query);",
        "let r = self.inner.answer(query);\nlet mut g = self.stats.lock().expect(\"stats lock\");\ng.record(&r);",
    ),
    (
        "P001",
        "panic!/unreachable!/todo!/unimplemented!/unchecked ops must not be reachable from public library entry points.",
        "D003 stops unwrap() at the token; P001 extends it across calls: a public entry whose callee three frames down can panic is a public entry that panics. Deliberate re-panics (worker panic propagation) and impossible-by-construction arms suppress with the reason. Library unwrap()/expect() stay D003's business.",
        "pub fn entry() { helper() }\nfn helper() { panic!(\"boom\") }",
        "pub fn entry() -> Result<(), Error> { helper() }\nfn helper() -> Result<(), Error> { Err(Error::Boom) }",
    ),
    (
        "S001",
        "Hand-maintained rule path lists must match the workspace.",
        "M001_PATHS and the D101 root set are lists of files; when a file is renamed or a new core module starts matching over Outcome/Metrics, a stale list silently skips it. S001 fails --check on the drift: listed paths must exist, and every core file matching over Outcome/Metrics must be listed.",
        "// M001_PATHS lists crates/core/src/scores.rs, but the file was renamed to eval.rs",
        "// M001_PATHS lists exactly the on-disk scoring files, including every new one",
    ),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule id (`D001`…).
    pub rule: &'static str,
    /// Human explanation of this particular occurrence.
    pub message: String,
    /// Short source excerpt around the offending token.
    pub snippet: String,
    /// Analysis stage that produced the finding (see [`PASSES`]).
    pub pass: &'static str,
    /// Propagation chain for interprocedural findings, outermost
    /// context first; empty for token-local rules.
    pub chain: Vec<String>,
}

/// The result of linting a set of sources.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `lint:allow` annotations that suppressed a finding.
    pub allows_used: usize,
}

impl LintReport {
    /// Canonical ordering so output bytes are stable run-to-run.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule, &a.chain)
                .cmp(&(b.file.as_str(), b.line, b.rule, &b.chain))
        });
    }

    /// The machine-readable document `--json` writes.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::U64(SCHEMA_VERSION)),
            (
                "rules",
                Json::Arr(
                    RULES
                        .iter()
                        .map(|(id, summary)| {
                            Json::obj(vec![
                                ("id", Json::Str((*id).to_owned())),
                                ("summary", Json::Str((*summary).to_owned())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("files_scanned", Json::U64(self.files_scanned as u64)),
            ("allows_used", Json::U64(self.allows_used as u64)),
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("file", Json::Str(f.file.clone())),
                                ("line", Json::U64(u64::from(f.line))),
                                ("rule", Json::Str(f.rule.to_owned())),
                                ("pass", Json::Str(f.pass.to_owned())),
                                ("message", Json::Str(f.message.clone())),
                                ("snippet", Json::Str(f.snippet.clone())),
                                (
                                    "chain",
                                    Json::Arr(
                                        f.chain
                                            .iter()
                                            .map(|link| Json::Str(link.clone()))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The human-readable table printed to stdout.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            out.push_str(&format!(
                "lint: clean — {} files scanned, {} allow(s) used\n",
                self.files_scanned, self.allows_used
            ));
            return out;
        }
        let loc_width = self
            .findings
            .iter()
            .map(|f| f.file.len() + 1 + digits(f.line))
            .max()
            .unwrap_or(8)
            .max("location".len());
        out.push_str(&format!("{:<loc_width$}  {:<4}  finding\n", "location", "rule"));
        out.push_str(&format!("{:-<loc_width$}  {:-<4}  {:-<40}\n", "", "", ""));
        for f in &self.findings {
            let loc = format!("{}:{}", f.file, f.line);
            out.push_str(&format!("{loc:<loc_width$}  {:<4}  {}\n", f.rule, f.message));
            if !f.chain.is_empty() {
                out.push_str(&format!(
                    "{:<loc_width$}        chain: {}\n",
                    "",
                    f.chain.join(" → ")
                ));
            }
            if !f.snippet.is_empty() {
                out.push_str(&format!("{:<loc_width$}        | {}\n", "", f.snippet));
            }
        }
        out.push_str(&format!(
            "\nlint: {} finding(s) in {} files scanned, {} allow(s) used\n",
            self.findings.len(),
            self.files_scanned,
            self.allows_used
        ));
        out
    }
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// Render the `--explain` text for `rule`, or `None` if unknown.
pub fn explain_rule(rule: &str) -> Option<String> {
    let (id, doc, rationale, fail, pass) =
        EXPLAIN.iter().find(|(id, ..)| *id == rule)?;
    let summary = RULES
        .iter()
        .find(|(rid, _)| rid == id)
        .map(|(_, s)| *s)
        .unwrap_or_default();
    let mut out = String::new();
    out.push_str(&format!("{id} — {summary}\n\n"));
    out.push_str(&format!("{doc}\n\nWhy: {rationale}\n\nFails:\n"));
    for line in fail.lines() {
        out.push_str(&format!("    {line}\n"));
    }
    out.push_str("\nPasses:\n");
    for line in pass.lines() {
        out.push_str(&format!("    {line}\n"));
    }
    Some(out)
}

/// A schema violation reported by [`validate_report`].
#[derive(Debug)]
pub struct SchemaError(pub String);

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<JsonError> for SchemaError {
    fn from(e: JsonError) -> SchemaError {
        SchemaError(e.to_string())
    }
}

/// Check that `doc` is a well-formed lint report (the shape
/// [`LintReport::to_json`] writes). Returns the number of findings.
pub fn validate_report(doc: &Json) -> Result<usize, SchemaError> {
    let version = doc
        .field("schema_version")?
        .as_u64()
        .ok_or_else(|| SchemaError("schema_version must be a non-negative integer".into()))?;
    if version != SCHEMA_VERSION {
        return Err(SchemaError(format!(
            "schema_version {version} unsupported (expected {SCHEMA_VERSION})"
        )));
    }
    let rules = doc
        .field("rules")?
        .as_arr()
        .ok_or_else(|| SchemaError("rules must be an array".into()))?;
    for (i, rule) in rules.iter().enumerate() {
        for key in ["id", "summary"] {
            if rule.get(key).and_then(Json::as_str).is_none() {
                return Err(SchemaError(format!("rules[{i}].{key} must be a string")));
            }
        }
    }
    for key in ["files_scanned", "allows_used"] {
        if doc.field(key)?.as_u64().is_none() {
            return Err(SchemaError(format!("{key} must be a non-negative integer")));
        }
    }
    let findings = doc
        .field("findings")?
        .as_arr()
        .ok_or_else(|| SchemaError("findings must be an array".into()))?;
    let known: Vec<&str> = RULES.iter().map(|(id, _)| *id).collect();
    for (i, f) in findings.iter().enumerate() {
        for key in ["file", "rule", "message", "snippet", "pass"] {
            if f.get(key).and_then(Json::as_str).is_none() {
                return Err(SchemaError(format!("findings[{i}].{key} must be a string")));
            }
        }
        if f.field("line")?.as_u64().is_none() {
            return Err(SchemaError(format!("findings[{i}].line must be a non-negative integer")));
        }
        let rule = f.get("rule").and_then(Json::as_str).unwrap_or_default();
        if !known.contains(&rule) {
            return Err(SchemaError(format!("findings[{i}].rule `{rule}` is not a known rule")));
        }
        let pass = f.get("pass").and_then(Json::as_str).unwrap_or_default();
        if !PASSES.contains(&pass) {
            return Err(SchemaError(format!("findings[{i}].pass `{pass}` is not a known pass")));
        }
        let chain = f
            .field("chain")?
            .as_arr()
            .ok_or_else(|| SchemaError(format!("findings[{i}].chain must be an array")))?;
        if chain.iter().any(|link| link.as_str().is_none()) {
            return Err(SchemaError(format!("findings[{i}].chain must contain only strings")));
        }
    }
    Ok(findings.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LintReport {
        LintReport {
            findings: vec![
                Finding {
                    file: "crates/x/src/lib.rs".into(),
                    line: 7,
                    rule: "D001",
                    message: "HashMap iterated into serialized output".into(),
                    snippet: "for (k, v) in map.iter() {".into(),
                    pass: "token",
                    chain: Vec::new(),
                },
                Finding {
                    file: "crates/x/src/lib.rs".into(),
                    line: 11,
                    rule: "D101",
                    message: "entropy source reachable from deterministic code".into(),
                    snippet: "Instant::now()".into(),
                    pass: "reach",
                    chain: vec!["eval::score".into(), "util::stamp".into(), "Instant::now".into()],
                },
            ],
            files_scanned: 3,
            allows_used: 1,
        }
    }

    #[test]
    fn json_roundtrip_validates() {
        let doc = sample_report().to_json();
        let text = doc.render_pretty();
        let parsed = taxoglimpse_json::from_str_value(&text).expect("report JSON reparses");
        assert_eq!(validate_report(&parsed).expect("schema-valid"), 2);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut doc = sample_report().to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "schema_version" {
                    *v = Json::U64(99);
                }
            }
        }
        assert!(validate_report(&doc).is_err());

        let empty = Json::obj(vec![]);
        assert!(validate_report(&empty).is_err());

        let mut bad_rule = sample_report();
        bad_rule.findings[0].rule = "Z999";
        assert!(validate_report(&bad_rule.to_json()).is_err());

        let mut bad_pass = sample_report();
        bad_pass.findings[0].pass = "vibes";
        assert!(validate_report(&bad_pass.to_json()).is_err());
    }

    #[test]
    fn table_mentions_every_finding_and_chain() {
        let table = sample_report().render_table();
        assert!(table.contains("crates/x/src/lib.rs:7"));
        assert!(table.contains("D001"));
        assert!(table.contains("chain: eval::score → util::stamp → Instant::now"));
        assert!(table.contains("2 finding(s)"));
    }

    #[test]
    fn explain_covers_every_rule() {
        for (id, _) in RULES {
            let text = explain_rule(id).expect("every rule has explain text");
            assert!(text.contains(id), "{id}");
            assert!(text.contains("Fails:"), "{id}");
            assert!(text.contains("Passes:"), "{id}");
        }
        assert!(explain_rule("Z999").is_none());
    }

    #[test]
    fn sort_orders_by_file_line_rule() {
        let mk = |file: &str, line: u32, rule: &'static str| Finding {
            file: file.into(),
            line,
            rule,
            message: String::new(),
            snippet: String::new(),
            pass: "token",
            chain: Vec::new(),
        };
        let mut report = LintReport {
            findings: vec![mk("b.rs", 1, "D001"), mk("a.rs", 9, "M001"), mk("a.rs", 9, "D003")],
            files_scanned: 2,
            allows_used: 0,
        };
        report.sort();
        let order: Vec<(String, u32, &str)> =
            report.findings.iter().map(|f| (f.file.clone(), f.line, f.rule)).collect();
        assert_eq!(order, [
            ("a.rs".to_owned(), 9, "D003"),
            ("a.rs".to_owned(), 9, "M001"),
            ("b.rs".to_owned(), 1, "D001"),
        ]);
    }
}
