//! Finding and report types, their JSON encoding, the human-readable
//! table, and schema validation for `--validate`.

use std::fmt;

use taxoglimpse_json::{Json, JsonError};

/// Report schema version written into the JSON document; bump on any
/// incompatible change to the finding fields.
pub const SCHEMA_VERSION: u64 = 1;

/// Every rule the engine knows, as `(id, summary)` pairs. `U001` is
/// the meta-rule for unused or malformed `lint:allow` annotations and
/// cannot itself be suppressed.
pub const RULES: &[(&str, &str)] = &[
    ("D001", "no HashMap/HashSet in deterministic (serialized/digested) paths; use BTreeMap/BTreeSet or sort at emission"),
    ("D002", "no SystemTime::now/Instant::now/RandomState entropy outside crates/bench and #[cfg(test)]"),
    ("D003", "no unwrap()/short expect() in library code without lint:allow(D003, reason)"),
    ("C001", "atomic Ordering / unsafe / static mut requires an adjacent justification comment"),
    ("M001", "no bare `_` wildcard arm over project enums in scoring/parse matches"),
    ("U001", "lint:allow annotation is unused or malformed"),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule id (`D001`…).
    pub rule: &'static str,
    /// Human explanation of this particular occurrence.
    pub message: String,
    /// Short source excerpt around the offending token.
    pub snippet: String,
}

/// The result of linting a set of sources.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `lint:allow` annotations that suppressed a finding.
    pub allows_used: usize,
}

impl LintReport {
    /// Canonical ordering so output bytes are stable run-to-run.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
    }

    /// The machine-readable document `--json` writes.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::U64(SCHEMA_VERSION)),
            (
                "rules",
                Json::Arr(
                    RULES
                        .iter()
                        .map(|(id, summary)| {
                            Json::obj(vec![
                                ("id", Json::Str((*id).to_owned())),
                                ("summary", Json::Str((*summary).to_owned())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("files_scanned", Json::U64(self.files_scanned as u64)),
            ("allows_used", Json::U64(self.allows_used as u64)),
            (
                "findings",
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("file", Json::Str(f.file.clone())),
                                ("line", Json::U64(u64::from(f.line))),
                                ("rule", Json::Str(f.rule.to_owned())),
                                ("message", Json::Str(f.message.clone())),
                                ("snippet", Json::Str(f.snippet.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The human-readable table printed to stdout.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            out.push_str(&format!(
                "lint: clean — {} files scanned, {} allow(s) used\n",
                self.files_scanned, self.allows_used
            ));
            return out;
        }
        let loc_width = self
            .findings
            .iter()
            .map(|f| f.file.len() + 1 + digits(f.line))
            .max()
            .unwrap_or(8)
            .max("location".len());
        out.push_str(&format!("{:<loc_width$}  {:<4}  finding\n", "location", "rule"));
        out.push_str(&format!("{:-<loc_width$}  {:-<4}  {:-<40}\n", "", "", ""));
        for f in &self.findings {
            let loc = format!("{}:{}", f.file, f.line);
            out.push_str(&format!("{loc:<loc_width$}  {:<4}  {}\n", f.rule, f.message));
            if !f.snippet.is_empty() {
                out.push_str(&format!("{:<loc_width$}        | {}\n", "", f.snippet));
            }
        }
        out.push_str(&format!(
            "\nlint: {} finding(s) in {} files scanned, {} allow(s) used\n",
            self.findings.len(),
            self.files_scanned,
            self.allows_used
        ));
        out
    }
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// A schema violation reported by [`validate_report`].
#[derive(Debug)]
pub struct SchemaError(pub String);

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<JsonError> for SchemaError {
    fn from(e: JsonError) -> SchemaError {
        SchemaError(e.to_string())
    }
}

/// Check that `doc` is a well-formed lint report (the shape
/// [`LintReport::to_json`] writes). Returns the number of findings.
pub fn validate_report(doc: &Json) -> Result<usize, SchemaError> {
    let version = doc
        .field("schema_version")?
        .as_u64()
        .ok_or_else(|| SchemaError("schema_version must be a non-negative integer".into()))?;
    if version != SCHEMA_VERSION {
        return Err(SchemaError(format!(
            "schema_version {version} unsupported (expected {SCHEMA_VERSION})"
        )));
    }
    let rules = doc
        .field("rules")?
        .as_arr()
        .ok_or_else(|| SchemaError("rules must be an array".into()))?;
    for (i, rule) in rules.iter().enumerate() {
        for key in ["id", "summary"] {
            if rule.get(key).and_then(Json::as_str).is_none() {
                return Err(SchemaError(format!("rules[{i}].{key} must be a string")));
            }
        }
    }
    for key in ["files_scanned", "allows_used"] {
        if doc.field(key)?.as_u64().is_none() {
            return Err(SchemaError(format!("{key} must be a non-negative integer")));
        }
    }
    let findings = doc
        .field("findings")?
        .as_arr()
        .ok_or_else(|| SchemaError("findings must be an array".into()))?;
    let known: Vec<&str> = RULES.iter().map(|(id, _)| *id).collect();
    for (i, f) in findings.iter().enumerate() {
        for key in ["file", "rule", "message", "snippet"] {
            if f.get(key).and_then(Json::as_str).is_none() {
                return Err(SchemaError(format!("findings[{i}].{key} must be a string")));
            }
        }
        if f.field("line")?.as_u64().is_none() {
            return Err(SchemaError(format!("findings[{i}].line must be a non-negative integer")));
        }
        let rule = f.get("rule").and_then(Json::as_str).unwrap_or_default();
        if !known.contains(&rule) {
            return Err(SchemaError(format!("findings[{i}].rule `{rule}` is not a known rule")));
        }
    }
    Ok(findings.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LintReport {
        LintReport {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                rule: "D001",
                message: "HashMap iterated into serialized output".into(),
                snippet: "for (k, v) in map.iter() {".into(),
            }],
            files_scanned: 3,
            allows_used: 1,
        }
    }

    #[test]
    fn json_roundtrip_validates() {
        let doc = sample_report().to_json();
        let text = doc.render_pretty();
        let parsed = taxoglimpse_json::from_str_value(&text).expect("report JSON reparses");
        assert_eq!(validate_report(&parsed).expect("schema-valid"), 1);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut doc = sample_report().to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "schema_version" {
                    *v = Json::U64(99);
                }
            }
        }
        assert!(validate_report(&doc).is_err());

        let empty = Json::obj(vec![]);
        assert!(validate_report(&empty).is_err());

        let mut bad_rule = sample_report();
        bad_rule.findings[0].rule = "Z999";
        assert!(validate_report(&bad_rule.to_json()).is_err());
    }

    #[test]
    fn table_mentions_every_finding() {
        let table = sample_report().render_table();
        assert!(table.contains("crates/x/src/lib.rs:7"));
        assert!(table.contains("D001"));
        assert!(table.contains("1 finding(s)"));
    }

    #[test]
    fn sort_orders_by_file_line_rule() {
        let mk = |file: &str, line: u32, rule: &'static str| Finding {
            file: file.into(),
            line,
            rule,
            message: String::new(),
            snippet: String::new(),
        };
        let mut report = LintReport {
            findings: vec![mk("b.rs", 1, "D001"), mk("a.rs", 9, "M001"), mk("a.rs", 9, "D003")],
            files_scanned: 2,
            allows_used: 0,
        };
        report.sort();
        let order: Vec<(String, u32, &str)> =
            report.findings.iter().map(|f| (f.file.clone(), f.line, f.rule)).collect();
        assert_eq!(order, [
            ("a.rs".to_owned(), 9, "D003"),
            ("a.rs".to_owned(), 9, "M001"),
            ("b.rs".to_owned(), 1, "D001"),
        ]);
    }
}
