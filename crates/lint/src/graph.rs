//! Workspace call graph, lock-acquisition sites with hold ranges, and
//! the per-function facts the interprocedural passes consume.
//!
//! Call resolution is name-based with type narrowing where the parser
//! gives us types: `self.method()` resolves within the receiver's impl,
//! `self.field.method()` through the field's declared (wrapper-stripped)
//! type, `Type::method()` through the qualifier. Untyped receivers fall
//! back to global name matching filtered through a stoplist of common
//! std method names, so `v.push(x)` never edges into a workspace `push`.
//!
//! Two deliberate asymmetries keep the over-approximation usable:
//! model-protocol calls (`answer`/`answer_batch`) are recorded as sinks
//! but never traversed as edges (a generic `M: LanguageModel` receiver
//! would otherwise edge into *every* implementation, fabricating lock
//! cycles), and guard-producing methods (`lock`, `expect`, `borrow`, …)
//! are transparent when walking `self.a.lock().expect(..).m()` chains.

use std::collections::BTreeMap;

use taxoglimpse_json::Json;

use crate::context::{skip_balanced, SourceFile};
use crate::lexer::{Token, TokenKind};
use crate::parser::{FnItem, ParsedFile};

/// Macros whose expansion panics; P001 sinks.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Unsafe unchecked accessors; P001 sinks alongside the panic macros.
const UNCHECKED_METHODS: &[&str] = &["get_unchecked", "get_unchecked_mut", "unwrap_unchecked"];

/// Model-protocol entry points: calling one *is* a model call (L002
/// sink) and is never traversed as a call edge.
const MODEL_METHODS: &[&str] = &["answer", "answer_batch"];

/// Methods that yield the same logical object (guards, conversions) —
/// transparent when resolving `self.field.lock().expect(..).method()`.
const GUARD_TRANSPARENT: &[&str] = &[
    "lock", "read", "write", "expect", "unwrap", "borrow", "borrow_mut", "as_ref", "as_mut",
    "as_deref", "clone", "get_mut",
];

/// Common std method names an *untyped* receiver must not resolve to a
/// workspace method of the same name. Typed resolution bypasses this
/// list, so a workspace `ResponseCache::insert` still resolves when the
/// receiver type is known.
const STOPLIST: &[&str] = &[
    "clone", "into", "from", "to_owned", "to_string", "as_str", "as_ref", "as_mut", "as_deref",
    "as_bytes", "iter", "iter_mut", "into_iter", "next", "map", "map_err", "and_then", "or_else",
    "unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok_or", "ok_or_else", "ok", "err",
    "expect", "unwrap", "take", "replace", "get", "get_mut", "insert", "remove", "push", "pop",
    "push_str", "len", "is_empty", "is_some", "is_none", "is_ok", "is_err", "contains",
    "contains_key", "entry", "or_insert", "or_insert_with", "or_default", "keys", "values",
    "split", "splitn", "split_whitespace", "trim", "trim_start", "trim_end", "parse", "fmt",
    "eq", "ne", "cmp", "partial_cmp", "hash", "min", "max", "abs", "floor", "ceil", "round",
    "sqrt", "powi", "powf", "extend", "collect", "filter", "filter_map", "flat_map", "fold",
    "sum", "count", "skip", "chain", "zip", "rev", "enumerate", "sort", "sort_by", "sort_by_key",
    "sort_unstable", "dedup", "retain", "find", "position", "any", "all", "last", "first",
    "starts_with", "ends_with", "chars", "bytes", "lines", "join", "send", "recv", "flush",
    "write_all", "read_to_string", "to_vec", "copied", "cloned", "drain", "clear", "resize",
    "reserve", "saturating_sub", "saturating_add", "checked_sub", "checked_add", "wrapping_add",
    "windows", "range",
];

/// Keywords that can directly precede `(` without being a call.
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "let", "move", "in", "as", "ref",
    "mut", "break", "continue", "where", "unsafe", "async", "await", "dyn", "impl", "pub", "use",
    "mod", "struct", "enum", "trait", "type", "const", "static", "crate", "super", "box", "fn",
];

/// One function node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index into the scanned file list.
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// Qualified display name for chains (`core::grid::GridRunner::run`).
    pub display: String,
    /// Display module path.
    pub module: String,
    /// Surrounding impl/trait type, if any.
    pub impl_type: Option<String>,
    /// Unrestricted `pub`.
    pub is_pub: bool,
    /// Trait-impl method or trait default method.
    pub via_trait: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// First parameter is a `self` receiver.
    pub has_self: bool,
    /// Whether the fn has a body (and therefore facts).
    pub has_body: bool,
}

/// One resolved call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// Token index of the callee name in its file.
    pub tok: usize,
    /// 1-based line of the call.
    pub line: u32,
    /// Callee name as written.
    pub name: String,
    /// Resolved candidate node indices (empty = external/std).
    pub callees: Vec<usize>,
}

/// A direct model-protocol call site (L002 sink).
#[derive(Debug, Clone)]
pub struct ModelSink {
    /// Token index in the file.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// `answer` or `answer_batch`.
    pub name: String,
}

/// A panic-family site (P001 sink).
#[derive(Debug, Clone)]
pub struct PanicSink {
    /// 1-based line.
    pub line: u32,
    /// Human name of the sink (`panic!`, `get_unchecked`).
    pub what: String,
}

/// A D001/D002 pattern site not sanctioned by a `lint:allow` (D101
/// source). Sites in D002-exempt locations (crates/bench) count too —
/// that exemption is exactly what a laundering wrapper hides behind.
#[derive(Debug, Clone)]
pub struct DetSource {
    /// 1-based line.
    pub line: u32,
    /// `D001` or `D002`.
    pub rule: &'static str,
    /// Human name of the source (`Instant::now`, `HashMap`).
    pub what: String,
}

/// One lock acquisition with the token range the guard is held over.
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Token index of the `lock` ident in its file.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Interned lock identity (index into [`CallGraph::lock_names`]).
    pub lock: u32,
    /// Token range `[start, end)` the guard is held over.
    pub hold: (usize, usize),
}

/// Per-node facts extracted from the body token scan.
#[derive(Debug, Default, Clone)]
pub struct Facts {
    /// Call sites, in token order.
    pub calls: Vec<Call>,
    /// Direct model-protocol call sites.
    pub model_sinks: Vec<ModelSink>,
    /// Panic-family sites.
    pub panic_sinks: Vec<PanicSink>,
    /// Unsanctioned D001/D002 pattern sites.
    pub det_sources: Vec<DetSource>,
    /// Lock acquisitions.
    pub locks: Vec<LockAcq>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test function nodes, in (file, source) order.
    pub nodes: Vec<Node>,
    /// Facts per node (empty for bodiless declarations).
    pub facts: Vec<Facts>,
    /// Interned lock identities.
    pub lock_names: Vec<String>,
}

impl CallGraph {
    /// Build the graph from prepared files and their parsed items.
    pub fn build(files: &[SourceFile], parsed: &[ParsedFile]) -> CallGraph {
        Builder::new(files, parsed).build()
    }

    /// Deduplicated callee indices of node `n`.
    pub fn callees(&self, n: usize) -> Vec<usize> {
        let mut out: Vec<usize> =
            self.facts[n].calls.iter().flat_map(|c| c.callees.iter().copied()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Find a node by its display name (test helper).
    pub fn node_by_display(&self, display: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.display == display)
    }

    /// The `--graph` JSON document.
    pub fn to_json(&self, files: &[SourceFile]) -> Json {
        Json::obj(vec![
            ("schema_version", Json::U64(1)),
            (
                "nodes",
                Json::Arr(
                    self.nodes
                        .iter()
                        .enumerate()
                        .map(|(i, n)| {
                            let facts = &self.facts[i];
                            Json::obj(vec![
                                ("fn", Json::Str(n.display.clone())),
                                ("file", Json::Str(files[n.file].rel_path.clone())),
                                ("line", Json::U64(u64::from(n.line))),
                                ("pub", Json::Bool(n.is_pub)),
                                ("via_trait", Json::Bool(n.via_trait)),
                                (
                                    "calls",
                                    Json::Arr(
                                        facts
                                            .calls
                                            .iter()
                                            .filter(|c| !c.callees.is_empty())
                                            .map(|c| {
                                                Json::obj(vec![
                                                    ("name", Json::Str(c.name.clone())),
                                                    ("line", Json::U64(u64::from(c.line))),
                                                    (
                                                        "to",
                                                        Json::Arr(
                                                            c.callees
                                                                .iter()
                                                                .map(|&t| {
                                                                    Json::Str(
                                                                        self.nodes[t]
                                                                            .display
                                                                            .clone(),
                                                                    )
                                                                })
                                                                .collect(),
                                                        ),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                (
                                    "locks",
                                    Json::Arr(
                                        facts
                                            .locks
                                            .iter()
                                            .map(|l| {
                                                Json::Str(
                                                    self.lock_names[l.lock as usize].clone(),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                                (
                                    "model_calls",
                                    Json::U64(facts.model_sinks.len() as u64),
                                ),
                                (
                                    "panic_sites",
                                    Json::U64(facts.panic_sinks.len() as u64),
                                ),
                                (
                                    "entropy_sources",
                                    Json::U64(facts.det_sources.len() as u64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// `true` iff `file` carries a `lint:allow(rule, ..)` targeting `line`
/// (read-only — used to treat sanctioned sites as trusted, without
/// consuming the allow).
pub fn has_allow(file: &SourceFile, rule: &str, line: u32) -> bool {
    file.allows.iter().any(|a| a.rule == rule && a.target_line == Some(line))
}

struct Builder<'a> {
    files: &'a [SourceFile],
    parsed: &'a [ParsedFile],
    nodes: Vec<Node>,
    bodies: Vec<Option<(usize, usize)>>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_impl: BTreeMap<(String, String), Vec<usize>>,
    structs: BTreeMap<String, (Vec<String>, BTreeMap<String, String>)>,
    imports: Vec<BTreeMap<String, String>>,
    lock_ids: BTreeMap<String, u32>,
    lock_names: Vec<String>,
}

impl<'a> Builder<'a> {
    fn new(files: &'a [SourceFile], parsed: &'a [ParsedFile]) -> Builder<'a> {
        Builder {
            files,
            parsed,
            nodes: Vec::new(),
            bodies: Vec::new(),
            by_name: BTreeMap::new(),
            by_impl: BTreeMap::new(),
            structs: BTreeMap::new(),
            imports: Vec::new(),
            lock_ids: BTreeMap::new(),
            lock_names: Vec::new(),
        }
    }

    fn build(mut self) -> CallGraph {
        for (fi, pf) in self.parsed.iter().enumerate() {
            let file = &self.files[fi];
            for item in &pf.fns {
                if file.in_test(item.line) {
                    continue;
                }
                let idx = self.nodes.len();
                self.nodes.push(node_of(fi, item));
                self.bodies.push(item.body);
                self.by_name.entry(item.name.clone()).or_default().push(idx);
                if let Some(ty) = &item.impl_type {
                    self.by_impl.entry((ty.clone(), item.name.clone())).or_default().push(idx);
                }
            }
            for s in &pf.structs {
                let entry = self
                    .structs
                    .entry(s.name.clone())
                    .or_insert_with(|| (Vec::new(), BTreeMap::new()));
                for g in &s.generics {
                    if !entry.0.contains(g) {
                        entry.0.push(g.clone());
                    }
                }
                for (f, ty) in &s.fields {
                    entry.1.entry(f.clone()).or_insert_with(|| ty.clone());
                }
            }
            let mut alias = BTreeMap::new();
            for u in &pf.imports {
                if u.binding != u.target {
                    alias.insert(u.binding.clone(), u.target.clone());
                }
            }
            self.imports.push(alias);
        }

        let mut facts = vec![Facts::default(); self.nodes.len()];
        for idx in 0..self.nodes.len() {
            if let Some((lo, hi)) = self.bodies[idx] {
                facts[idx] = self.scan_body(idx, lo, hi);
            }
        }
        CallGraph { nodes: self.nodes, facts, lock_names: self.lock_names }
    }

    /// Scan one body for calls, sinks, sources, and locks, skipping the
    /// bodies of nested fn items (they are their own nodes).
    fn scan_body(&mut self, idx: usize, lo: usize, hi: usize) -> Facts {
        let node = self.nodes[idx].clone();
        let file = &self.files[node.file];
        let toks = &file.lexed.tokens;
        let mut skips: Vec<(usize, usize)> = self.parsed[node.file]
            .fns
            .iter()
            .filter_map(|f| f.body)
            .filter(|&(l, h)| l > lo && h <= hi)
            .collect();
        skips.sort_unstable();
        let depth = delim_depths(toks, lo, hi);

        let mut facts = Facts::default();
        let mut skip_i = 0usize;
        let mut k = lo;
        while k < hi {
            while skip_i < skips.len() && skips[skip_i].1 <= k {
                skip_i += 1;
            }
            if skip_i < skips.len() && skips[skip_i].0 == k {
                k = skips[skip_i].1;
                skip_i += 1;
                continue;
            }
            let t = &toks[k];
            if t.kind != TokenKind::Ident {
                k += 1;
                continue;
            }
            // A nested fn's own name is a declaration, not a call.
            if k > 0 && toks[k - 1].text == "fn" {
                k += 1;
                continue;
            }
            let text = t.text.as_str();

            // Macros: panic-family are sinks; none are call edges, but
            // their argument tokens keep getting scanned.
            if text_at(toks, k + 1) == "!" {
                if PANIC_MACROS.contains(&text) {
                    facts
                        .panic_sinks
                        .push(PanicSink { line: t.line, what: format!("{text}!") });
                }
                k += 1;
                continue;
            }

            // D101 sources (unsanctioned D001/D002 pattern sites).
            match text {
                "HashMap" | "HashSet" => {
                    if !has_allow(file, "D001", t.line) {
                        facts.det_sources.push(DetSource {
                            line: t.line,
                            rule: "D001",
                            what: text.to_owned(),
                        });
                    }
                }
                "SystemTime" | "Instant"
                    if text_at(toks, k + 1) == "::" && text_at(toks, k + 2) == "now" =>
                {
                    if !has_allow(file, "D002", t.line) {
                        facts.det_sources.push(DetSource {
                            line: t.line,
                            rule: "D002",
                            what: format!("{text}::now"),
                        });
                    }
                }
                "RandomState" => {
                    if !has_allow(file, "D002", t.line) {
                        facts.det_sources.push(DetSource {
                            line: t.line,
                            rule: "D002",
                            what: text.to_owned(),
                        });
                    }
                }
                _ => {}
            }

            let is_method = k > 0 && toks[k - 1].text == ".";

            // Lock acquisition: `.lock()`.
            if text == "lock"
                && is_method
                && text_at(toks, k + 1) == "("
                && text_at(toks, k + 2) == ")"
            {
                let chain = receiver_chain(toks, k - 1);
                let name = self.lock_name(&node, &chain, t.line);
                let id = self.intern_lock(name);
                let hold = hold_range(toks, lo, hi, k, &depth);
                facts.locks.push(LockAcq { tok: k, line: t.line, lock: id, hold });
                k += 1;
                continue;
            }

            // Unchecked accessors: P001 sinks.
            if UNCHECKED_METHODS.contains(&text) && is_method && text_at(toks, k + 1) == "(" {
                facts.panic_sinks.push(PanicSink { line: t.line, what: text.to_owned() });
                k += 1;
                continue;
            }

            // Call sites: `name(`, optionally with a `::<..>` turbofish.
            let called = if text_at(toks, k + 1) == "(" {
                true
            } else if text_at(toks, k + 1) == "::" && text_at(toks, k + 2) == "<" {
                let g = crate::parser::skip_generics_pub(toks, k + 2, hi);
                text_at(toks, g) == "("
            } else {
                false
            };
            if !called {
                k += 1;
                continue;
            }

            if MODEL_METHODS.contains(&text) {
                // Model-protocol sink; deliberately not a call edge.
                facts
                    .model_sinks
                    .push(ModelSink { tok: k, line: t.line, name: text.to_owned() });
                k += 1;
                continue;
            }

            let callees = if is_method {
                let chain = receiver_chain(toks, k - 1);
                self.resolve_method(&node, &chain, text)
            } else if k > 0 && toks[k - 1].text == "::" {
                self.resolve_path(&node, toks, k, text)
            } else if !EXPR_KEYWORDS.contains(&text) {
                self.resolve_plain(&node, text)
            } else {
                k += 1;
                continue;
            };
            facts.calls.push(Call {
                tok: k,
                line: t.line,
                name: text.to_owned(),
                callees,
            });
            k += 1;
        }
        facts
    }

    fn intern_lock(&mut self, name: String) -> u32 {
        if let Some(&id) = self.lock_ids.get(&name) {
            return id;
        }
        let id = self.lock_names.len() as u32;
        self.lock_names.push(name.clone());
        self.lock_ids.insert(name, id);
        id
    }

    /// Stable identity for the mutex behind a `.lock()` receiver.
    fn lock_name(&self, node: &Node, chain: &[String], line: u32) -> String {
        match chain {
            [s, field, ..] if s == "self" => {
                let owner = node.impl_type.as_deref().unwrap_or(&node.module);
                format!("{owner}.{field}")
            }
            [var, ..] => format!("{}.{var}", node.module),
            [] => format!("{}.anon_l{line}", node.display),
        }
    }

    /// `self.method()` and `self.field.method()` resolution.
    fn resolve_method(&self, node: &Node, chain: &[String], name: &str) -> Vec<usize> {
        if let Some((head, rest)) = chain.split_first() {
            if head == "self" {
                if let Some(own) = &node.impl_type {
                    // Walk field types, skipping guard/conversion hops.
                    let mut ty = own.clone();
                    let mut known = true;
                    let mut generic = false;
                    for seg in rest {
                        if GUARD_TRANSPARENT.contains(&seg.as_str()) {
                            continue;
                        }
                        match self.structs.get(&ty) {
                            Some((generics, fields)) => match fields.get(seg) {
                                Some(ft) if generics.contains(ft) => {
                                    generic = true;
                                    break;
                                }
                                Some(ft) => ty = ft.clone(),
                                None => {
                                    known = false;
                                    break;
                                }
                            },
                            None => {
                                known = false;
                                break;
                            }
                        }
                    }
                    if generic {
                        // A generic field is some *other* type: every
                        // candidate but our own impl.
                        return self.fallback(name, Some(own));
                    }
                    if known {
                        if let Some(list) = self.by_impl.get(&(ty.clone(), name.to_owned())) {
                            return list.clone();
                        }
                        if rest.iter().any(|s| !GUARD_TRANSPARENT.contains(&s.as_str())) {
                            // Typed to a field type with no such method:
                            // a std container call, not a workspace edge.
                            return Vec::new();
                        }
                        // `self.method()` with no inherent impl: a trait
                        // default method (stoplist still applies).
                        if STOPLIST.contains(&name) {
                            return Vec::new();
                        }
                        return self
                            .by_name
                            .get(name)
                            .map(|l| {
                                l.iter()
                                    .copied()
                                    .filter(|&i| {
                                        let n = &self.nodes[i];
                                        n.via_trait && n.has_body && n.has_self
                                    })
                                    .collect()
                            })
                            .unwrap_or_default();
                    }
                }
            }
        }
        self.fallback(name, None)
    }

    /// `Qual::name(..)` resolution: alias-expanded impl or module match.
    fn resolve_path(&self, node: &Node, toks: &[Token], name_idx: usize, name: &str) -> Vec<usize> {
        let qualifier = path_qualifier(toks, name_idx);
        let Some(mut qual) = qualifier else { return Vec::new() };
        if qual == "Self" {
            match &node.impl_type {
                Some(own) => qual = own.clone(),
                None => return Vec::new(),
            }
        }
        if let Some(target) = self.imports[node.file].get(&qual) {
            qual = target.clone();
        }
        if let Some(list) = self.by_impl.get(&(qual.clone(), name.to_owned())) {
            return list.clone();
        }
        // Module-qualified free fn: `report::merge(..)`.
        self.by_name
            .get(name)
            .map(|l| {
                l.iter()
                    .copied()
                    .filter(|&i| {
                        let n = &self.nodes[i];
                        n.impl_type.is_none()
                            && (n.module == qual || n.module.ends_with(&format!("::{qual}")))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Bare `name(..)`: same-file free fns, then same-module, then any
    /// free fn (stoplisted).
    fn resolve_plain(&self, node: &Node, name: &str) -> Vec<usize> {
        let Some(list) = self.by_name.get(name) else { return Vec::new() };
        let free: Vec<usize> = list
            .iter()
            .copied()
            .filter(|&i| self.nodes[i].impl_type.is_none())
            .collect();
        let same_file: Vec<usize> =
            free.iter().copied().filter(|&i| self.nodes[i].file == node.file).collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let same_module: Vec<usize> =
            free.iter().copied().filter(|&i| self.nodes[i].module == node.module).collect();
        if !same_module.is_empty() {
            return same_module;
        }
        if STOPLIST.contains(&name) {
            return Vec::new();
        }
        free
    }

    /// Untyped-receiver fallback: workspace methods of that name, minus
    /// the stoplist and optionally minus one impl type.
    fn fallback(&self, name: &str, exclude_impl: Option<&str>) -> Vec<usize> {
        if STOPLIST.contains(&name) {
            return Vec::new();
        }
        self.by_name
            .get(name)
            .map(|l| {
                l.iter()
                    .copied()
                    .filter(|&i| {
                        let n = &self.nodes[i];
                        n.impl_type.is_some()
                            && n.has_body
                            && n.has_self // method calls only hit `self` receivers
                            && !exclude_impl
                                .is_some_and(|ex| n.impl_type.as_deref() == Some(ex))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

fn node_of(file: usize, item: &FnItem) -> Node {
    Node {
        file,
        name: item.name.clone(),
        display: item.display(),
        module: item.module.clone(),
        impl_type: item.impl_type.clone(),
        is_pub: item.is_pub,
        via_trait: item.via_trait,
        line: item.line,
        has_self: item.has_self,
        has_body: item.body.is_some(),
    }
}

fn text_at(toks: &[Token], i: usize) -> String {
    toks.get(i).map(|t| t.text.clone()).unwrap_or_default()
}

/// Delimiter depths before each token of `[lo, hi)`, for statement and
/// scope extent computation. Index 0 of each vec corresponds to `lo`.
/// `.0` counts all of `(){}[]`, `.1` only braces.
fn delim_depths(toks: &[Token], lo: usize, hi: usize) -> (Vec<i32>, Vec<i32>) {
    let mut all = Vec::with_capacity(hi - lo);
    let mut braces = Vec::with_capacity(hi - lo);
    let (mut a, mut b) = (0i32, 0i32);
    for t in &toks[lo..hi] {
        all.push(a);
        braces.push(b);
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => a += 1,
                ")" | "]" => a -= 1,
                "{" => {
                    a += 1;
                    b += 1;
                }
                "}" => {
                    a -= 1;
                    b -= 1;
                }
                _ => {}
            }
        }
    }
    (all, braces)
}

/// Walk a method receiver backwards from the `.` at `dot_idx`:
/// `self.shard(key).lock()` → `["self", "shard"]` (outermost first).
fn receiver_chain(toks: &[Token], dot_idx: usize) -> Vec<String> {
    let mut parts = Vec::new();
    let mut k = dot_idx;
    loop {
        if k == 0 {
            break;
        }
        k -= 1;
        match toks[k].text.as_str() {
            ")" | "]" => {
                let open = rev_skip_balanced(toks, k);
                if open == 0 {
                    break;
                }
                k = open; // loop decrements to the token before the opener
            }
            "?" => {}
            _ if toks[k].kind == TokenKind::Ident => {
                parts.push(toks[k].text.clone());
                if k == 0 || toks[k - 1].text != "." {
                    break;
                }
                k -= 1; // consume the `.`; loop steps to the next element
            }
            _ => break,
        }
    }
    parts.reverse();
    parts
}

/// Given `close` pointing at `)`/`]`/`}`, return the index of the
/// matching opener (or 0 if unbalanced).
fn rev_skip_balanced(toks: &[Token], close: usize) -> usize {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        if toks[j].kind == TokenKind::Punct {
            match toks[j].text.as_str() {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        if j == 0 {
            return 0;
        }
        j -= 1;
    }
}

/// The token range a guard acquired at `lock_tok` is held over.
///
/// Lexical model: a let-bound guard lives to the end of its enclosing
/// block or an explicit `drop(binding)`; any other acquisition
/// (temporary guard, `if let`/`while let` scrutinee, match scrutinee)
/// lives to the end of its statement, including attached blocks and
/// `else` chains. Conservative in the over-holding direction only for
/// `let x = m.lock().…copied_out();` shapes, which the workspace
/// avoids.
fn hold_range(
    toks: &[Token],
    lo: usize,
    hi: usize,
    lock_tok: usize,
    depth: &(Vec<i32>, Vec<i32>),
) -> (usize, usize) {
    let (all, braces) = depth;
    let d_of = |i: usize| all[i - lo];
    let b_of = |i: usize| braces[i - lo];

    // Find the statement head: scan back to a `;`/`{`/`}`/`=>` at
    // balance 0. An unmatched `(`/`[` means expression context.
    let mut head = lo;
    let mut expr_ctx = false;
    {
        let mut bal = 0i32;
        let mut j = lock_tok;
        while j > lo {
            j -= 1;
            let t = &toks[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    ")" | "]" | "}" => bal += 1,
                    "{" if bal == 0 => {
                        head = j + 1;
                        break;
                    }
                    "(" | "[" if bal == 0 => {
                        head = j + 1;
                        expr_ctx = true;
                        break;
                    }
                    "(" | "[" | "{" => bal -= 1,
                    ";" | "=>" if bal == 0 => {
                        head = j + 1;
                        break;
                    }
                    _ => {}
                }
            }
        }
    }

    let is_let = !expr_ctx && toks.get(head).is_some_and(|t| t.text == "let");
    if is_let {
        // Guard binding: first ident after `let` (through `mut`/`(`).
        let mut binding = None;
        let mut j = head + 1;
        while j < lock_tok {
            let t = &toks[j];
            if t.kind == TokenKind::Ident && t.text != "mut" {
                binding = Some(t.text.clone());
                break;
            }
            if t.kind == TokenKind::Punct && !matches!(t.text.as_str(), "(" | "&") {
                break;
            }
            j += 1;
        }
        let base = b_of(head);
        let mut j = lock_tok;
        while j < hi {
            if b_of(j) < base || (toks[j].text == "}" && b_of(j) == base) {
                return (lock_tok, j);
            }
            if let Some(b) = &binding {
                if toks[j].text == "drop"
                    && text_at(toks, j + 1) == "("
                    && text_at(toks, j + 2) == *b
                    && text_at(toks, j + 3) == ")"
                {
                    return (lock_tok, j);
                }
            }
            j += 1;
        }
        return (lock_tok, hi);
    }

    // Temporary / scrutinee guard: end of statement, block(s) included.
    let base = d_of(head);
    let mut j = lock_tok;
    while j < hi {
        let d = d_of(j);
        if d < base {
            return (lock_tok, j);
        }
        if d == base {
            match toks[j].text.as_str() {
                ";" => return (lock_tok, j),
                ")" | "]" | "}" => return (lock_tok, j),
                "{" => {
                    let close = skip_balanced(toks, j).min(hi);
                    if text_at(toks, close) == "else" {
                        j = close + 1;
                        continue;
                    }
                    return (lock_tok, close);
                }
                _ => {}
            }
        }
        j += 1;
    }
    (lock_tok, hi)
}

/// The path segment before `name_idx`'s `::`, skipping a turbofish:
/// `Vec::<u8>::with_capacity` → `Vec`, `cache::shard_of` → `cache`.
fn path_qualifier(toks: &[Token], name_idx: usize) -> Option<String> {
    if name_idx < 2 {
        return None;
    }
    let mut j = name_idx - 2; // token before the `::`
    if toks[j].text == ">" {
        // `Type::<args>::name` — hop the generic args backwards.
        let mut depth = 0i32;
        loop {
            match toks[j].text.as_str() {
                ">" => depth += 1,
                "<" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        // `<Foo as Trait>` casts: first ident inside.
        if j + 1 < name_idx && toks[j + 1].kind == TokenKind::Ident {
            return Some(toks[j + 1].text.clone());
        }
        if j < 2 || toks[j - 1].text != "::" {
            return None;
        }
        j -= 2;
    }
    (toks[j].kind == TokenKind::Ident).then(|| toks[j].text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_items;

    fn graph_of(sources: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> =
            sources.iter().map(|(p, s)| SourceFile::new(p, s)).collect();
        let parsed: Vec<ParsedFile> = files.iter().map(parse_items).collect();
        let graph = CallGraph::build(&files, &parsed);
        (files, graph)
    }

    #[test]
    fn typed_field_resolution_beats_name_dispatch() {
        let src = r#"
            struct Session { count: u32 }
            impl Session {
                fn call(&mut self) { self.count += 1; }
            }
            struct Wrapper { session: Arc<Mutex<Session>> }
            impl Wrapper {
                fn go(&self) {
                    self.session.lock().expect("session lock stays healthy").call();
                }
            }
            struct Unrelated;
            impl Unrelated {
                fn call(&self) {}
            }
        "#;
        let (_, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let go = g.node_by_display("x::Wrapper::go").expect("go node exists");
        let call = g.facts[go]
            .calls
            .iter()
            .find(|c| c.name == "call")
            .expect("the .call() site is recorded");
        let targets: Vec<&str> =
            call.callees.iter().map(|&i| g.nodes[i].display.as_str()).collect();
        assert_eq!(targets, ["x::Session::call"]);
        // And the lock identity is the typed field, held across the call.
        let lock = &g.facts[go].locks[0];
        assert_eq!(g.lock_names[lock.lock as usize], "Wrapper.session");
        assert!(lock.hold.0 <= call.tok && call.tok < lock.hold.1);
    }

    #[test]
    fn stoplist_blocks_untyped_std_names() {
        let src = r#"
            struct Table;
            impl Table {
                fn insert(&self) {}
            }
            fn caller(v: &mut Vec<u32>) {
                v.insert(0);
            }
        "#;
        let (_, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let caller = g.node_by_display("x::caller").expect("caller node");
        assert!(g.facts[caller].calls.iter().all(|c| c.callees.is_empty()));
    }

    #[test]
    fn model_calls_are_sinks_not_edges() {
        let src = r#"
            struct Bot;
            impl Bot {
                fn answer(&self) -> u32 { 1 }
            }
            fn drive(b: &Bot) -> u32 { b.answer() }
        "#;
        let (_, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let drive = g.node_by_display("x::drive").expect("drive node");
        assert!(g.facts[drive].calls.is_empty());
        assert_eq!(g.facts[drive].model_sinks.len(), 1);
    }

    #[test]
    fn let_guard_holds_to_block_end_or_drop() {
        let src = r#"
            struct S { m: Mutex<u32>, n: Mutex<u32> }
            impl S {
                fn dropped(&self) {
                    let g = self.m.lock().expect("m lock is never poisoned");
                    drop(g);
                    tail();
                }
                fn held(&self) {
                    let g = self.n.lock().expect("n lock is never poisoned");
                    tail();
                }
            }
            fn tail() {}
        "#;
        let (_, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let dropped = g.node_by_display("x::S::dropped").expect("dropped node");
        let held = g.node_by_display("x::S::held").expect("held node");
        let in_hold = |n: usize| {
            let lock = &g.facts[n].locks[0];
            let call = g.facts[n].calls.iter().find(|c| c.name == "tail").expect("tail call");
            lock.hold.0 <= call.tok && call.tok < lock.hold.1
        };
        assert!(!in_hold(dropped), "drop(g) must end the hold");
        assert!(in_hold(held), "guard lives to the end of the block");
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let src = r#"
            struct S { m: Mutex<u32> }
            impl S {
                fn f(&self) {
                    *self.m.lock().expect("m lock is never poisoned") += 1;
                    after();
                }
            }
            fn after() {}
        "#;
        let (_, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let f = g.node_by_display("x::S::f").expect("f node");
        let lock = &g.facts[f].locks[0];
        let call = g.facts[f].calls.iter().find(|c| c.name == "after").expect("after call");
        assert!(call.tok >= lock.hold.1, "statement-scoped guard released before after()");
    }

    #[test]
    fn entropy_sources_respect_allows() {
        let src = "fn t() -> u64 {\n    let m = HashMap::new(); // lint:allow(D001, graph fixture)\n    let i = Instant::now();\n    0\n}\n";
        let (_, g) = graph_of(&[("crates/x/src/lib.rs", src)]);
        let t = g.node_by_display("x::t").expect("t node");
        let sources: Vec<&str> =
            g.facts[t].det_sources.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(sources, ["Instant::now"]);
    }

    #[test]
    fn plain_calls_prefer_same_file() {
        let a = "pub fn entry() { helper() }\nfn helper() {}\n";
        let b = "fn helper() {}\n";
        let (_, g) =
            graph_of(&[("crates/a/src/lib.rs", a), ("crates/b/src/lib.rs", b)]);
        let entry = g.node_by_display("a::entry").expect("entry node");
        let targets: Vec<&str> = g.facts[entry].calls[0]
            .callees
            .iter()
            .map(|&i| g.nodes[i].display.as_str())
            .collect();
        assert_eq!(targets, ["a::helper"]);
    }
}
