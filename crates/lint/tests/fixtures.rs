//! Fixture corpus for the linter: known-bad and known-good snippets per
//! rule, including the tricky cases the tokenizer exists for — trigger
//! words inside string literals, doc comments, and raw-string spans.

use taxoglimpse_lint::{lint_sources, Finding, LintReport};

fn lint_one(rel_path: &str, source: &str) -> LintReport {
    lint_sources(&[(rel_path.to_owned(), source.to_owned())])
}

fn rules_of(report: &LintReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- D001

#[test]
fn d001_flags_hashmap_and_hashset_in_code() {
    let report = lint_one(
        "crates/x/src/lib.rs",
        "use std::collections::HashMap;\nfn f() { let s: HashSet<u32> = HashSet::new(); }\n",
    );
    assert_eq!(rules_of(&report), ["D001", "D001", "D001"]);
    assert_eq!(report.findings[0].line, 1);
}

#[test]
fn d001_ignores_hashmap_in_string_literal() {
    let report = lint_one(
        "crates/x/src/lib.rs",
        "fn f() -> &'static str { \"prefer HashMap over BTreeMap, says this string\" }\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn d001_ignores_hashmap_in_raw_string_span() {
    // The raw string contains quotes and spans lines; nothing in it is
    // code, including the `HashMap::new()` spelled inside.
    let src = "fn f() -> &'static str {\n    r#\"let m = HashMap::new(); // \"quoted\" HashSet\n       still the same HashMap literal\"#\n}\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn d001_ignores_hashmap_in_comments() {
    let report = lint_one(
        "crates/x/src/lib.rs",
        "/// Unlike a HashMap, this is ordered.\n// HashSet would be wrong here.\n/* and a HashMap in a block comment */\nfn f() {}\n",
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn d001_skips_cfg_test_modules() {
    let src = "fn f() {}\n\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let _m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// ---------------------------------------------------------------- D002

#[test]
fn d002_flags_clock_and_entropy_sources() {
    let src = "fn f() {\n    let t = std::time::Instant::now();\n    let s = SystemTime::now();\n    let h: std::collections::hash_map::RandomState = Default::default();\n}\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert_eq!(rules_of(&report), ["D002", "D002", "D002"]);
}

#[test]
fn d002_exempts_crates_bench() {
    let src = "fn f() { let t = Instant::now(); }\n";
    let report = lint_one("crates/bench/src/harness.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn d002_ignores_instant_without_now() {
    // Mentioning the type (e.g. storing a duration) is fine; only the
    // `::now` entropy source is flagged.
    let report =
        lint_one("crates/x/src/lib.rs", "fn f(t: std::time::Instant) -> Instant { t }\n");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// ---------------------------------------------------------------- D003

#[test]
fn d003_flags_unwrap_and_short_expect() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(x: Option<u32>) -> u32 { x.expect(\"oops\") }\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert_eq!(rules_of(&report), ["D003", "D003"]);
}

#[test]
fn d003_accepts_contextful_expect() {
    let src = "fn f(x: Option<u32>) -> u32 { x.expect(\"capacity reserved in the constructor\") }\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn d003_ignores_unwrap_in_doc_comment() {
    let src = "/// Calls `x.unwrap()` internally? No: this is only a doc comment.\n/// ```\n/// let y = maybe().unwrap();\n/// ```\nfn f() {}\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn d003_exempts_bins_and_tests() {
    let src = "fn main() { run().unwrap(); }\n";
    assert!(lint_one("crates/x/src/main.rs", src).findings.is_empty());
    assert!(lint_one("crates/x/src/bin/tool.rs", src).findings.is_empty());

    let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { make().unwrap(); }\n}\n";
    assert!(lint_one("crates/x/src/lib.rs", test_src).findings.is_empty());
}

#[test]
fn d003_ignores_similarly_named_methods() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\nfn g(x: Option<u32>) -> u32 { x.unwrap_or_default() }\nfn unwrap(y: u32) -> u32 { y }\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// ---------------------------------------------------------------- C001

#[test]
fn c001_requires_justification_for_relaxed_ordering() {
    let src = "fn f(c: &AtomicUsize) -> usize { c.fetch_add(1, Ordering::Relaxed) }\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert_eq!(rules_of(&report), ["C001"]);
}

#[test]
fn c001_accepts_same_line_or_preceding_comment() {
    let trailing =
        "fn f(c: &AtomicUsize) -> usize { c.fetch_add(1, Ordering::Relaxed) } // counter only\n";
    assert!(lint_one("crates/x/src/lib.rs", trailing).findings.is_empty());

    let above = "fn f(c: &AtomicUsize) -> usize {\n    // Sole coordination point; join publishes the writes.\n    c.fetch_add(1, Ordering::Relaxed)\n}\n";
    assert!(lint_one("crates/x/src/lib.rs", above).findings.is_empty());
}

#[test]
fn c001_flags_unsafe_and_static_mut() {
    let src = "static mut COUNTER: u32 = 0;\nfn f() { unsafe { COUNTER += 1 } }\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert_eq!(rules_of(&report), ["C001", "C001"]);
}

#[test]
fn c001_ignores_cmp_ordering_variants() {
    // `std::cmp::Ordering::Less` is not a memory ordering.
    let src = "fn f(a: u32, b: u32) -> Ordering { if a < b { Ordering::Less } else { Ordering::Greater } }\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// ---------------------------------------------------------------- M001

/// A scoring file plus the enum it matches over, as the engine sees
/// them (the enum may live in a different file).
fn scoring_fixture(match_body: &str) -> LintReport {
    let enum_file = ("crates/core/src/metrics.rs".to_owned(),
        "pub enum Outcome { Correct, Missed, Wrong }\n".to_owned());
    let scoring = format!("fn score(o: Outcome) -> u32 {{\n    match o {{\n{match_body}    }}\n}}\n");
    lint_sources(&[enum_file, ("crates/core/src/eval.rs".to_owned(), scoring)])
}

#[test]
fn m001_flags_bare_wildcard_over_project_enum() {
    let report = scoring_fixture("        Outcome::Correct => 1,\n        _ => 0,\n");
    assert_eq!(rules_of(&report), ["M001"]);
    assert_eq!(report.findings[0].file, "crates/core/src/eval.rs");
}

#[test]
fn m001_accepts_explicit_arms_and_guarded_wildcards() {
    let explicit = scoring_fixture(
        "        Outcome::Correct => 1,\n        Outcome::Missed | Outcome::Wrong => 0,\n",
    );
    assert!(explicit.findings.is_empty(), "{:?}", explicit.findings);

    // `_ if cond` is a deliberate catch — not a bare wildcard.
    let guarded = scoring_fixture(
        "        Outcome::Correct => 1,\n        _ if true => 2,\n        Outcome::Wrong => 0,\n",
    );
    assert!(guarded.findings.is_empty(), "{:?}", guarded.findings);
}

#[test]
fn m001_ignores_matches_without_project_enums() {
    let report = scoring_fixture("        1 => 1,\n        _ => 0,\n");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn m001_is_scoped_to_scoring_and_parse_paths() {
    let enum_file =
        ("crates/core/src/metrics.rs".to_owned(), "pub enum Outcome { A, B }\n".to_owned());
    let elsewhere = ("crates/report/src/table.rs".to_owned(),
        "fn f(o: Outcome) -> u32 { match o { Outcome::A => 1, _ => 0 } }\n".to_owned());
    let report = lint_sources(&[enum_file, elsewhere]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// ------------------------------------------------------- suppressions

#[test]
fn allow_suppresses_trailing_and_own_line() {
    let src = "// lint:allow(D001, interning cache is never iterated)\nuse std::collections::HashMap;\nfn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(D003, demo)\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.allows_used, 2);
}

#[test]
fn allow_for_wrong_rule_does_not_suppress() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(D001, wrong rule)\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    // The D003 finding stands, and the D001 allow is unused → U001.
    assert_eq!(rules_of(&report), ["D003", "U001"]);
}

#[test]
fn unused_allow_is_flagged() {
    let src = "// lint:allow(D003, nothing here unwraps)\nfn f() -> u32 { 1 }\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert_eq!(rules_of(&report), ["U001"]);
    assert!(report.findings[0].message.contains("unused suppression"));
    assert_eq!(report.allows_used, 0);
}

#[test]
fn malformed_allow_is_flagged() {
    let src = "// lint:allow D003 forgot the parens\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    // Malformed annotation cannot suppress: both U001 and D003 fire.
    assert_eq!(rules_of(&report), ["U001", "D003"]);
}

#[test]
fn prose_mention_of_lint_allow_is_not_an_annotation() {
    let src = "/// Suppressions use `lint:allow(D003, reason)` as described in DESIGN.md.\nfn f() -> u32 { 1 }\n";
    let report = lint_one("crates/x/src/lib.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// ------------------------------------------------------------- report

#[test]
fn findings_are_sorted_and_json_schema_valid() {
    let sources = vec![
        ("crates/b/src/lib.rs".to_owned(), "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n".to_owned()),
        ("crates/a/src/lib.rs".to_owned(), "use std::collections::HashMap;\n".to_owned()),
    ];
    let report = lint_sources(&sources);
    let files: Vec<&str> = report.findings.iter().map(|f| f.file.as_str()).collect();
    assert_eq!(files, ["crates/a/src/lib.rs", "crates/b/src/lib.rs"]);
    assert_eq!(report.files_scanned, 2);

    let text = report.to_json().render_pretty();
    let doc = taxoglimpse_json::from_str_value(&text).expect("report JSON parses");
    assert_eq!(taxoglimpse_lint::validate_report(&doc).expect("schema-valid"), 2);

    // Every finding surfaces a snippet of the offending line.
    assert!(report.findings.iter().all(|f: &Finding| !f.snippet.is_empty()));
}
