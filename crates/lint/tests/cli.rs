//! Exit-code contract of the `taxoglimpse-lint` binary:
//! `0` clean/valid, `1` findings under `--check` (or invalid input
//! under `--validate`), `2` usage errors.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn lint_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_taxoglimpse-lint"))
}

/// A scratch workspace under the target dir, deleted on drop.
struct ScratchTree {
    root: PathBuf,
}

impl ScratchTree {
    fn new(name: &str, lib_source: &str) -> ScratchTree {
        let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
        let src = root.join("crates/fixture/src");
        fs::create_dir_all(&src).expect("scratch dir is creatable");
        fs::write(src.join("lib.rs"), lib_source).expect("scratch file is writable");
        ScratchTree { root }
    }
}

impl Drop for ScratchTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn check_exits_zero_on_clean_tree_and_one_on_seeded_violation() {
    let clean = ScratchTree::new("cli_clean", "fn ok() -> u32 { 1 }\n");
    let status = lint_bin()
        .args(["--workspace", "--check", "--root"])
        .arg(&clean.root)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(0));

    let seeded = ScratchTree::new(
        "cli_seeded",
        "use std::collections::HashMap;\nfn bad(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let status = lint_bin()
        .args(["--workspace", "--check", "--root"])
        .arg(&seeded.root)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(1), "seeded D001+D003 must fail --check");
}

#[test]
fn without_check_findings_do_not_fail_the_exit_code() {
    let seeded = ScratchTree::new("cli_nocheck", "use std::collections::HashMap;\n");
    let status = lint_bin()
        .args(["--workspace", "--root"])
        .arg(&seeded.root)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(0), "--check opts into the failing exit code");
}

#[test]
fn json_output_round_trips_through_validate() {
    let seeded = ScratchTree::new("cli_json", "use std::collections::HashMap;\n");
    let json_path = seeded.root.join("LINT.json");
    let status = lint_bin()
        .args(["--workspace", "--root"])
        .arg(&seeded.root)
        .arg("--json")
        .arg(&json_path)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(0));

    let status = lint_bin()
        .arg("--validate")
        .arg(&json_path)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(0), "emitted JSON must validate");

    fs::write(&json_path, "{\"schema_version\": 1}").expect("scratch file is writable");
    let status = lint_bin()
        .arg("--validate")
        .arg(&json_path)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(1), "truncated document must fail --validate");
}

#[test]
fn usage_errors_exit_two() {
    for args in [&["--no-such-flag"][..], &[][..]] {
        let status = lint_bin().args(args).status().expect("lint binary runs");
        assert_eq!(status.code(), Some(2), "args {args:?}");
    }
}
