//! Exit-code contract of the `taxoglimpse-lint` binary:
//! `0` clean/valid, `1` findings under `--check` (or invalid input
//! under `--validate`), `2` usage errors.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn lint_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_taxoglimpse-lint"))
}

/// A scratch workspace under the target dir, deleted on drop.
struct ScratchTree {
    root: PathBuf,
}

impl ScratchTree {
    fn new(name: &str, lib_source: &str) -> ScratchTree {
        let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
        let src = root.join("crates/fixture/src");
        fs::create_dir_all(&src).expect("scratch dir is creatable");
        fs::write(src.join("lib.rs"), lib_source).expect("scratch file is writable");
        ScratchTree { root }
    }
}

impl Drop for ScratchTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn check_exits_zero_on_clean_tree_and_one_on_seeded_violation() {
    let clean = ScratchTree::new("cli_clean", "fn ok() -> u32 { 1 }\n");
    let status = lint_bin()
        .args(["--workspace", "--check", "--root"])
        .arg(&clean.root)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(0));

    let seeded = ScratchTree::new(
        "cli_seeded",
        "use std::collections::HashMap;\nfn bad(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let status = lint_bin()
        .args(["--workspace", "--check", "--root"])
        .arg(&seeded.root)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(1), "seeded D001+D003 must fail --check");
}

#[test]
fn without_check_findings_do_not_fail_the_exit_code() {
    let seeded = ScratchTree::new("cli_nocheck", "use std::collections::HashMap;\n");
    let status = lint_bin()
        .args(["--workspace", "--root"])
        .arg(&seeded.root)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(0), "--check opts into the failing exit code");
}

#[test]
fn json_output_round_trips_through_validate() {
    let seeded = ScratchTree::new("cli_json", "use std::collections::HashMap;\n");
    let json_path = seeded.root.join("LINT.json");
    let status = lint_bin()
        .args(["--workspace", "--root"])
        .arg(&seeded.root)
        .arg("--json")
        .arg(&json_path)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(0));

    let status = lint_bin()
        .arg("--validate")
        .arg(&json_path)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(0), "emitted JSON must validate");

    fs::write(&json_path, "{\"schema_version\": 1}").expect("scratch file is writable");
    let status = lint_bin()
        .arg("--validate")
        .arg(&json_path)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(1), "truncated document must fail --validate");
}

#[test]
fn usage_errors_exit_two() {
    for args in [&["--no-such-flag"][..], &[][..]] {
        let status = lint_bin().args(args).status().expect("lint binary runs");
        assert_eq!(status.code(), Some(2), "args {args:?}");
    }
}

#[test]
fn explain_prints_every_rule_and_rejects_unknown_ids() {
    for (id, _) in taxoglimpse_lint::RULES {
        let out = lint_bin().args(["--explain", id]).output().expect("lint binary runs");
        assert_eq!(out.status.code(), Some(0), "--explain {id}");
        let text = String::from_utf8(out.stdout).expect("explain output is UTF-8");
        assert!(text.contains(id), "--explain {id} names the rule");
        assert!(text.contains("Fails:"), "--explain {id} shows a failing example");
        assert!(text.contains("Passes:"), "--explain {id} shows a passing example");
    }

    let status = lint_bin().args(["--explain", "Z999"]).status().expect("lint binary runs");
    assert_eq!(status.code(), Some(2), "unknown rule id is a usage error");
}

#[test]
fn graph_dump_is_valid_json_naming_scanned_functions() {
    let tree = ScratchTree::new(
        "cli_graph",
        "pub fn outer() -> u32 { inner() }\nfn inner() -> u32 { 3 }\n",
    );
    let graph_path = tree.root.join("GRAPH.json");
    let status = lint_bin()
        .args(["--workspace", "--root"])
        .arg(&tree.root)
        .arg("--graph")
        .arg(&graph_path)
        .status()
        .expect("lint binary runs");
    assert_eq!(status.code(), Some(0));

    let text = fs::read_to_string(&graph_path).expect("graph file written");
    let doc = taxoglimpse_json::from_str_value(&text).expect("graph dump is valid JSON");
    let rendered = doc.render_pretty();
    assert!(rendered.contains("fixture::outer"), "graph names the public fn");
    assert!(rendered.contains("fixture::inner"), "graph names the callee");
}
