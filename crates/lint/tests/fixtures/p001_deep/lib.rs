//! P001 fixture: a panic three private frames below the public entry
//! point. Token rules cannot see this; the reachability pass walks
//! `entry → middle → deep → panic!`.

pub fn entry(values: &[u32]) -> u32 {
    middle(values)
}

fn middle(values: &[u32]) -> u32 {
    deep(values)
}

fn deep(values: &[u32]) -> u32 {
    if values.is_empty() {
        panic!("deep chain fixture requires at least one value");
    }
    values[0]
}

// A panic in dead private code is NOT reachable from any public entry
// and must stay silent.
fn orphaned() {
    panic!("nobody calls this");
}
