//! D101 laundering fixture, deterministic side: a scoring root that
//! looks clean to the token rules — the entropy hides behind a helper
//! in a D002-exempt location (see `bench_util.rs`).

pub fn score(values: &[u64]) -> u64 {
    let base: u64 = values.iter().sum();
    base.wrapping_add(stamp_offset())
}

fn stamp_offset() -> u64 {
    crate::util::stamp()
}
