//! D101 laundering fixture, entropy side: `Instant::now` is legal here
//! under the token rules (crates/bench is D002-exempt), but feeding it
//! into deterministic scoring through a call chain is exactly what the
//! interprocedural pass exists to catch.

pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
