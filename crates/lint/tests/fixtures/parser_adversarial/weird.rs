//! Adversarial parser corpus: every shape here is legal Rust that a
//! naive item scanner misreads. The linter must report NOTHING for
//! this file — each construct is a false-positive trap, not a bug.

// `fn`, `impl`, and `panic!` spelled inside macro definitions are
// pattern fragments, not items or sinks reachable from anything.
macro_rules! make_getter {
    ($name:ident, $field:ident) => {
        pub fn $name(&self) -> u32 {
            self.$field
        }
    };
}

/// Doc comments mentioning `fn hidden()` and `Instant::now()` are prose.
/// ```
/// let t = std::time::Instant::now(); // doctest, not code we scan
/// ```
pub struct Carrier {
    width: u32,
    height: u32,
}

impl Carrier {
    make_getter!(width, width);
    make_getter!(height, height);

    pub fn describe(&self) -> String {
        // Trigger words inside string literals stay strings.
        let template = "call fn answer() { HashMap::new() } via Instant::now";
        let raw = r#"fn raw_decoy() { panic!("never parsed") }"#;
        format!("{template}/{raw}/{}", self.width)
    }
}

// Nested generics with shifts that lex as two `>` tokens, plus a
// where-clause — the item scanner must come out the other side and
// still see `after_generics` as a real function.
pub fn deeply_generic<T: IntoIterator<Item = Result<Vec<u32>, String>>, F>(items: T, f: F) -> usize
where
    F: Fn(&[u32]) -> Option<Result<u32, String>>,
{
    let _ = f(&[]);
    items.into_iter().count()
}

pub fn after_generics() -> u32 {
    7
}

// Trait default methods are items; `provided` has a body and must be
// parsed with `via_trait` semantics, while `required` has none.
pub trait Sizing {
    fn required(&self) -> u32;

    fn provided(&self) -> u32 {
        self.required() + 1
    }
}

// A char literal that looks like an opening brace/quote must not
// derail brace matching for the items below it.
pub fn punctuation_soup() -> (char, char, char) {
    ('{', '"', '}')
}

pub fn last_item_parses() -> bool {
    true
}
