//! L002 fixture: a model call made while a lock is held. The guard is
//! let-bound, so it lives to the end of the function — every caller of
//! `ask` queues behind the slowest model turn.

pub struct Backend;

impl Backend {
    pub fn answer(&self, query: &str) -> usize {
        query.len()
    }
}

pub struct Gate {
    model: Mutex<Backend>,
}

impl Gate {
    pub fn ask(&self, query: &str) -> usize {
        let guard = self.model.lock().expect("model gate lock stays healthy");
        guard.answer(query)
    }
}
