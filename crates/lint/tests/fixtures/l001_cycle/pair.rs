//! L001 fixture: the classic AB/BA deadlock shape. `ab` orders the
//! locks first→second, `ba` orders them second→first; the lock-order
//! graph has a two-cycle.

pub struct Pair {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let a = self.first.lock().expect("first lock stays healthy");
        let b = self.second.lock().expect("second lock stays healthy");
        *a + *b
    }

    pub fn ba(&self) -> u32 {
        let b = self.second.lock().expect("second lock stays healthy");
        let a = self.first.lock().expect("first lock stays healthy");
        *a + *b
    }
}
