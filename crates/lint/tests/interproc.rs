//! Interprocedural-pass corpus: each fixture under `tests/fixtures/` is
//! a miniature workspace exercising one pass — the D101 laundering
//! chain the token rules cannot see, the L001 AB/BA cycle, an L002
//! model call under a held lock, a P001 panic buried three frames deep
//! — plus an adversarial parser corpus that must produce no findings
//! at all.

use std::path::Path;

use taxoglimpse_lint::{lint_sources, LintReport};

/// Load fixture files from `tests/fixtures/<dir>/` and lint them under
/// the given workspace-relative paths.
fn lint_fixture(dir: &str, mapping: &[(&str, &str)]) -> LintReport {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(dir);
    let sources: Vec<(String, String)> = mapping
        .iter()
        .map(|(file, rel)| {
            let text = std::fs::read_to_string(base.join(file))
                .unwrap_or_else(|e| panic!("fixture {dir}/{file}: {e}"));
            ((*rel).to_owned(), text)
        })
        .collect();
    lint_sources(&sources)
}

fn rules_of(report: &LintReport) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- D101

#[test]
fn d101_catches_laundered_entropy_with_full_chain() {
    let report = lint_fixture(
        "d101_laundering",
        &[
            ("core_eval.rs", "crates/core/src/eval.rs"),
            ("bench_util.rs", "crates/bench/src/util.rs"),
        ],
    );
    // The token rules are silent: crates/bench is D002-exempt, and the
    // root file contains no entropy pattern. Only D101 fires.
    assert_eq!(rules_of(&report), ["D101"], "{:?}", report.findings);

    let f = &report.findings[0];
    // Anchored at the entropy source, not at the root.
    assert_eq!(f.file, "crates/bench/src/util.rs");
    assert_eq!(f.pass, "reach");
    // The chain names every hop from the nearest deterministic root
    // down to the clock read (every fn in a root file is a root, so
    // the minimal chain starts at `stamp_offset`, not `score`).
    assert_eq!(
        f.chain,
        ["core::eval::stamp_offset", "bench::util::stamp", "Instant::now"]
    );
}

#[test]
fn d101_respects_an_allow_at_the_source() {
    let entropy = "pub fn stamp() -> u64 {\n    \
        // lint:allow(D101, fixture proves suppression plumbs through the interprocedural pass)\n    \
        let t = std::time::Instant::now();\n    t.elapsed().as_nanos() as u64\n}\n";
    let root = "pub fn score() -> u64 { crate::util::stamp() }\n";
    let report = lint_sources(&[
        ("crates/core/src/eval.rs".to_owned(), root.to_owned()),
        ("crates/bench/src/util.rs".to_owned(), entropy.to_owned()),
    ]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.allows_used, 1);
}

// ---------------------------------------------------------------- L001

#[test]
fn l001_flags_ab_ba_cycle_once() {
    let report = lint_fixture("l001_cycle", &[("pair.rs", "crates/x/src/pair.rs")]);
    assert_eq!(rules_of(&report), ["L001"], "{:?}", report.findings);

    let f = &report.findings[0];
    assert_eq!(f.pass, "locks");
    // The chain walks the cycle and closes it.
    assert_eq!(f.chain, ["Pair.first", "Pair.second", "Pair.first"]);
    assert!(f.message.contains("lock-order cycle"), "{}", f.message);
}

#[test]
fn l001_stays_silent_for_consistent_order() {
    // Same two locks, but both functions take first → second.
    let src = "pub struct Pair { first: Mutex<u32>, second: Mutex<u32> }\n\
        impl Pair {\n\
            pub fn ab(&self) -> u32 {\n\
                let a = self.first.lock().expect(\"first lock stays healthy\");\n\
                let b = self.second.lock().expect(\"second lock stays healthy\");\n\
                *a + *b\n\
            }\n\
            pub fn also_ab(&self) -> u32 {\n\
                let a = self.first.lock().expect(\"first lock stays healthy\");\n\
                let b = self.second.lock().expect(\"second lock stays healthy\");\n\
                *a * *b\n\
            }\n\
        }\n";
    let report = lint_sources(&[("crates/x/src/pair.rs".to_owned(), src.to_owned())]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// ---------------------------------------------------------------- L002

#[test]
fn l002_flags_model_call_under_held_lock() {
    let report = lint_fixture("l002_lock_model", &[("gate.rs", "crates/x/src/gate.rs")]);
    assert_eq!(rules_of(&report), ["L002"], "{:?}", report.findings);

    let f = &report.findings[0];
    assert_eq!(f.pass, "locks");
    assert_eq!(f.chain, ["x::gate::Gate::ask", "answer"]);
    assert!(f.message.contains("Gate.model"), "{}", f.message);
}

#[test]
fn l002_stays_silent_when_lock_drops_before_the_call() {
    // Statement-scoped guard: the lock is released before the model
    // call, so serving is not serialized.
    let src = "pub struct Backend;\n\
        impl Backend { pub fn answer(&self, q: &str) -> usize { q.len() } }\n\
        pub struct Gate { model: Backend, count: Mutex<u32> }\n\
        impl Gate {\n\
            pub fn ask(&self, q: &str) -> usize {\n\
                { let mut c = self.count.lock().expect(\"count lock stays healthy\"); *c += 1; }\n\
                self.model.answer(q)\n\
            }\n\
        }\n";
    let report = lint_sources(&[("crates/x/src/gate.rs".to_owned(), src.to_owned())]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// ---------------------------------------------------------------- P001

#[test]
fn p001_walks_a_deep_private_chain_to_the_panic() {
    let report = lint_fixture("p001_deep", &[("lib.rs", "crates/x/src/lib.rs")]);
    assert_eq!(rules_of(&report), ["P001"], "{:?}", report.findings);

    let f = &report.findings[0];
    assert_eq!(f.pass, "reach");
    assert_eq!(f.chain, ["x::entry", "x::middle", "x::deep", "panic!"]);
    // The orphaned private panic produced no second finding.
    assert!(!report.findings.iter().any(|f| f.message.contains("orphaned")));
}

#[test]
fn p001_ignores_binary_targets() {
    let src = "pub fn main() { helper() }\nfn helper() { panic!(\"CLI glue may panic\") }\n";
    let report = lint_sources(&[("crates/x/src/main.rs".to_owned(), src.to_owned())]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

// ------------------------------------------------------------- parser

#[test]
fn adversarial_corpus_produces_no_findings() {
    let report =
        lint_fixture("parser_adversarial", &[("weird.rs", "crates/x/src/weird.rs")]);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}
