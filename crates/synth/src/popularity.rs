//! Popularity simulation — the paper's Figure 2.
//!
//! The paper measures taxonomy popularity as the average number of
//! google.com results for 100 randomly sampled concept names. We cannot
//! issue web searches offline, so we simulate per-concept hit counts
//! with a log-normal distribution anchored on each taxonomy's
//! [`crate::TaxonomyProfile::popularity_hits`], preserving the paper's
//! ordering: eBay, Schema.org, Amazon and Google are the *common*
//! taxonomies; ACM-CCS, GeoNames, Glottolog, ICD-10-CM, OAE and NCBI the
//! *specialized* ones.

use crate::kind::TaxonomyKind;
use crate::profiles::TaxonomyProfile;
use crate::rng::fork;
use crate::rng::Rng;
use crate::rng::SliceRandom;
use taxoglimpse_taxonomy::Taxonomy;

/// Simulated per-concept web-hit counts.
#[derive(Debug, Clone)]
pub struct PopularityModel {
    seed: u64,
    /// Log-space spread of per-concept hits (natural-log sigma).
    pub sigma: f64,
}

impl PopularityModel {
    /// A model with the default spread (about one decimal order of
    /// magnitude between typical concepts of the same taxonomy).
    pub fn new(seed: u64) -> Self {
        PopularityModel { seed, sigma: 1.2 }
    }

    /// Simulated hit count for one named concept of `kind`.
    pub fn concept_hits(&self, kind: TaxonomyKind, concept: &str) -> f64 {
        let anchor = TaxonomyProfile::of(kind).popularity_hits;
        let h = crate::rng::hash_str(self.seed ^ (kind as u64).wrapping_mul(0x9e3779b97f4a7c15), concept);
        // Two independent uniforms → one standard normal (Box–Muller).
        let u1 = ((h >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        let u2 = (((h.wrapping_mul(0x2545F4914F6CDD1D)) >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        anchor * (self.sigma * z).exp()
    }

    /// The paper's measurement: mean hits over `samples` randomly sampled
    /// concepts of the generated taxonomy (the paper uses 100).
    pub fn measure(&self, kind: TaxonomyKind, taxonomy: &Taxonomy, samples: usize) -> f64 {
        let mut rng = fork(self.seed, "popularity", kind as u64);
        let ids: Vec<_> = taxonomy.ids().collect();
        if ids.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for _ in 0..samples {
            let &id = ids.choose(&mut rng).expect("id list checked non-empty above");
            total += self.concept_hits(kind, taxonomy.name(id));
        }
        total / samples as f64
    }

    /// Like [`PopularityModel::measure`] but noise-free: returns the
    /// anchor directly. Used when only the ordering matters.
    pub fn anchor(&self, kind: TaxonomyKind) -> f64 {
        TaxonomyProfile::of(kind).popularity_hits
    }

    /// A Figure-2 data series: `(kind, mean hits)` for all ten
    /// taxonomies, most popular first.
    pub fn figure2_series(&self, taxonomies: &[(TaxonomyKind, &Taxonomy)], samples: usize) -> Vec<(TaxonomyKind, f64)> {
        let mut series: Vec<(TaxonomyKind, f64)> = taxonomies
            .iter()
            .map(|&(kind, tax)| (kind, self.measure(kind, tax, samples)))
            .collect();
        series.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        series
    }

    /// Deterministic noise helper exposed for tests.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draw a seeded uniform in `(0, 1)` — convenience for callers that
    /// need auxiliary noise tied to this model's seed.
    pub fn uniform(&self, tag: &str) -> f64 {
        let mut rng = fork(self.seed, tag, 0);
        rng.gen_range(1e-9..1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenOptions};

    #[test]
    fn concept_hits_are_deterministic() {
        let m = PopularityModel::new(3);
        let a = m.concept_hits(TaxonomyKind::Ebay, "Wireless Speakers");
        let b = m.concept_hits(TaxonomyKind::Ebay, "Wireless Speakers");
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn common_beat_specialized_in_expectation() {
        let m = PopularityModel::new(7);
        let opts = GenOptions { seed: 7, scale: 0.05 };
        let common = generate(TaxonomyKind::Ebay, opts).unwrap();
        let specialized = generate(TaxonomyKind::Ncbi, GenOptions { seed: 7, scale: 0.002 }).unwrap();
        let hits_common = m.measure(TaxonomyKind::Ebay, &common, 100);
        let hits_special = m.measure(TaxonomyKind::Ncbi, &specialized, 100);
        assert!(
            hits_common > hits_special * 10.0,
            "common {hits_common:.0} should dwarf specialized {hits_special:.0}"
        );
    }

    #[test]
    fn figure2_orders_by_popularity() {
        let m = PopularityModel::new(11);
        let opts = GenOptions { seed: 11, scale: 0.05 };
        let ebay = generate(TaxonomyKind::Ebay, opts).unwrap();
        let glotto = generate(TaxonomyKind::Glottolog, GenOptions { seed: 11, scale: 0.02 }).unwrap();
        let series = m.figure2_series(&[(TaxonomyKind::Glottolog, &glotto), (TaxonomyKind::Ebay, &ebay)], 100);
        assert_eq!(series[0].0, TaxonomyKind::Ebay);
        assert!(series[0].1 >= series[1].1);
    }

    #[test]
    fn measure_empty_taxonomy_is_zero() {
        let t = taxoglimpse_taxonomy::TaxonomyBuilder::new("e").build().unwrap();
        let m = PopularityModel::new(1);
        assert_eq!(m.measure(TaxonomyKind::Ebay, &t, 10), 0.0);
    }
}
