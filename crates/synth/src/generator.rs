//! Whole-taxonomy generation.

use crate::kind::TaxonomyKind;
use crate::names::Namer;
use crate::profiles::TaxonomyProfile;
use crate::rng::fork;
use crate::shape::assign_children;
use std::collections::BTreeSet;
use std::fmt;
use taxoglimpse_taxonomy::{NodeId, Taxonomy, TaxonomyBuilder};

/// Options controlling generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenOptions {
    /// Master seed; every derived stream is forked from it.
    pub seed: u64,
    /// Scale factor in `(0, 1]` applied to the per-level node counts.
    /// `1.0` reproduces Table 1 exactly; tests use small scales.
    pub scale: f64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions { seed: DEFAULT_SEED, scale: 1.0 }
    }
}

/// Seed used by [`GenOptions::default`]; chosen arbitrarily and fixed so
/// the default generation is reproducible across releases.
pub const DEFAULT_SEED: u64 = 0x7a_6c_1a_9e_5e_ed_00_01;

/// Generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// Scale outside `(0, 1]`.
    BadScale,
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::BadScale => write!(f, "scale must be in (0, 1]"),
        }
    }
}

impl std::error::Error for GenError {}

/// Generate the synthetic stand-in for `kind`.
///
/// Deterministic: identical `(kind, options)` produce byte-identical
/// taxonomies.
pub fn generate(kind: TaxonomyKind, options: GenOptions) -> Result<Taxonomy, GenError> {
    generate_profile(&TaxonomyProfile::of(kind), options)
}

/// Generate from an explicit profile (exposed for custom shapes).
pub fn generate_profile(profile: &TaxonomyProfile, options: GenOptions) -> Result<Taxonomy, GenError> {
    if !(options.scale > 0.0 && options.scale <= 1.0) {
        return Err(GenError::BadScale);
    }
    let levels = profile.scaled_levels(options.scale);
    let total: usize = levels.iter().sum();
    let namer = Namer::new(profile.regime);
    let label = profile.kind.label();
    let mut b = TaxonomyBuilder::with_capacity(label, total, 24);

    let mut name_rng = fork(options.seed, label, 0);
    let mut shape_rng = fork(options.seed, label, 1);

    // Roots.
    let mut frontier: Vec<NodeId> = Vec::with_capacity(levels[0]);
    {
        let mut seen = BTreeSet::new();
        for i in 0..levels[0] {
            let name = unique_name(&mut seen, |attempt| {
                let base = namer.root(&mut name_rng, i);
                decorate(base, attempt)
            });
            frontier.push(b.add_root(&name));
        }
    }

    // Deeper levels.
    for (level, &count) in levels.iter().enumerate().skip(1) {
        let per_parent = assign_children(&mut shape_rng, frontier.len(), count);
        let mut next = Vec::with_capacity(count);
        for (parent_slot, &n_children) in per_parent.iter().enumerate() {
            if n_children == 0 {
                continue;
            }
            let parent_id = frontier[parent_slot];
            let parent_name = b_name(&b, parent_id).to_owned();
            let mut seen: BTreeSet<String> = BTreeSet::new();
            for sib in 0..n_children {
                let name = unique_name(&mut seen, |attempt| {
                    let base = namer.child(&mut name_rng, level, &parent_name, sib);
                    decorate(base, attempt)
                });
                next.push(b.add_child(parent_id, &name));
            }
        }
        frontier = next;
    }

    Ok(b.build().expect("profile depths are far below the builder limit"))
}

/// Retry `make` until it yields a name unseen among siblings, decorating
/// with an attempt counter as a last resort.
fn unique_name(seen: &mut BTreeSet<String>, mut make: impl FnMut(usize) -> String) -> String {
    for attempt in 0..16 {
        let name = make(attempt);
        if seen.insert(name.clone()) {
            return name;
        }
    }
    // Certain fallback: a numeric suffix scanned upward from the sibling
    // count is guaranteed to terminate.
    let base = make(0);
    for k in seen.len().. {
        let name = format!("{base} #{k}");
        if seen.insert(name.clone()) {
            return name;
        }
    }
    unreachable!("the suffix scan always finds a free name")
}

/// Attempts 0–3 return the base name unchanged (fresh draws); afterwards
/// append a disambiguating Roman-ish ordinal so termination is certain.
fn decorate(base: String, attempt: usize) -> String {
    if attempt < 4 {
        base
    } else {
        format!("{base} {}", attempt - 2)
    }
}

/// Read a name back out of the builder.
fn b_name(b: &TaxonomyBuilder, id: NodeId) -> &str {
    b.name_of(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_taxonomy::{validate, TaxonomyStats};

    fn opts(scale: f64) -> GenOptions {
        GenOptions { seed: 42, scale }
    }

    #[test]
    fn ebay_matches_table_1_exactly() {
        let t = generate(TaxonomyKind::Ebay, opts(1.0)).unwrap();
        validate(&t).unwrap();
        let s = TaxonomyStats::compute(&t);
        assert_eq!(s.num_entities, 595);
        assert_eq!(s.num_trees, 13);
        assert_eq!(s.nodes_per_level, vec![13, 110, 472]);
    }

    #[test]
    fn google_matches_table_1_exactly() {
        let t = generate(TaxonomyKind::Google, opts(1.0)).unwrap();
        validate(&t).unwrap();
        let s = TaxonomyStats::compute(&t);
        assert_eq!(s.nodes_per_level, vec![21, 192, 1349, 2203, 1830]);
    }

    #[test]
    fn all_kinds_generate_at_small_scale() {
        for kind in TaxonomyKind::ALL {
            let t = generate(kind, opts(0.01)).unwrap();
            validate(&t).unwrap();
            assert!(!t.is_empty(), "{kind}");
            assert_eq!(
                t.num_levels(),
                TaxonomyProfile::of(kind).num_levels(),
                "{kind} should keep its depth even when scaled"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(TaxonomyKind::Glottolog, opts(0.05)).unwrap();
        let b = generate(TaxonomyKind::Glottolog, opts(0.05)).unwrap();
        assert_eq!(a.to_tsv(), b.to_tsv());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(TaxonomyKind::Ebay, GenOptions { seed: 1, scale: 1.0 }).unwrap();
        let b = generate(TaxonomyKind::Ebay, GenOptions { seed: 2, scale: 1.0 }).unwrap();
        assert_ne!(a.to_tsv(), b.to_tsv());
    }

    #[test]
    fn sibling_names_are_unique() {
        let t = generate(TaxonomyKind::Oae, opts(0.2)).unwrap();
        for id in t.ids() {
            let kids = t.children(id);
            let mut names: Vec<&str> = kids.iter().map(|&k| t.name(k)).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "duplicate sibling names under {}", t.name(id));
        }
    }

    #[test]
    fn most_nodes_have_uncles() {
        // Hard-negative sampling needs uncles; the shape algorithm should
        // make them near-universal.
        let t = generate(TaxonomyKind::Amazon, opts(0.1)).unwrap();
        let mut with = 0usize;
        let mut total = 0usize;
        for level in 1..t.num_levels() {
            for &id in t.nodes_at_level(level) {
                total += 1;
                if !t.uncles(id).is_empty() {
                    with += 1;
                }
            }
        }
        assert!(with as f64 / total as f64 > 0.95, "{with}/{total} nodes have uncles");
    }

    #[test]
    fn ncbi_species_level_names_embed_genus() {
        let t = generate(TaxonomyKind::Ncbi, opts(0.002)).unwrap();
        let species_level = t.num_levels() - 1;
        let mut embeds = 0usize;
        let nodes = t.nodes_at_level(species_level);
        for &id in nodes {
            let parent = t.parent(id).unwrap();
            if t.name(id).starts_with(t.name(parent)) {
                embeds += 1;
            }
        }
        assert!(
            embeds as f64 / nodes.len() as f64 > 0.9,
            "{embeds}/{} species embed the genus",
            nodes.len()
        );
    }

    #[test]
    fn bad_scale_is_rejected() {
        assert_eq!(generate(TaxonomyKind::Ebay, opts(0.0)).unwrap_err(), GenError::BadScale);
        assert_eq!(generate(TaxonomyKind::Ebay, opts(1.5)).unwrap_err(), GenError::BadScale);
    }
}
