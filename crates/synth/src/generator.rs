//! Whole-taxonomy generation.
//!
//! Two entry points share one allocation-free production engine:
//!
//! * [`generate`] — the **legacy sequential stream**: one name stream
//!   consumed in node order. Its byte output is pinned by digest tests
//!   and must never change; it is the substrate under every pinned
//!   report digest in the workspace.
//! * [`generate_par`] — the **chunk-indexed stream** (`PAR_STREAM_VERSION`):
//!   each level's parents are partitioned into fixed-size contiguous
//!   chunks and every chunk forks an independent name stream from the
//!   master seed *by `(level, chunk index)`* — never by thread — so the
//!   output is byte-identical for any worker count. Chunk buffers are
//!   spliced into the builder in chunk order.
//!
//! The two paths produce *different* (both deterministic) name streams:
//! chunk-forked RNGs cannot reproduce the sequential stream. Callers
//! that participate in pinned-digest artifacts (the bench
//! `TaxonomyCache`, `BENCH_eval.json`) stay on [`generate`].

use crate::kind::TaxonomyKind;
use crate::names::Namer;
use crate::profiles::TaxonomyProfile;
use crate::rng::{fork, SynthRng};
use crate::shape::assign_children;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use taxoglimpse_taxonomy::{NodeId, Taxonomy, TaxonomyBuilder};

/// Options controlling generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenOptions {
    /// Master seed; every derived stream is forked from it.
    pub seed: u64,
    /// Scale factor in `(0, 1]` applied to the per-level node counts.
    /// `1.0` reproduces Table 1 exactly; tests use small scales.
    pub scale: f64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions { seed: DEFAULT_SEED, scale: 1.0 }
    }
}

/// Seed used by [`GenOptions::default`]; chosen arbitrarily and fixed so
/// the default generation is reproducible across releases.
pub const DEFAULT_SEED: u64 = 0x7a_6c_1a_9e_5e_ed_00_01;

/// Version tag of the chunk-indexed name-stream discipline used by
/// [`generate_par`]. Snapshot cache keys embed it (alongside the binary
/// codec version) so a stream change invalidates cached taxonomies.
/// The legacy sequential stream of [`generate`] is version 1.
pub const PAR_STREAM_VERSION: u32 = 2;

/// Stream version of the legacy sequential discipline ([`generate`]).
pub const SEQ_STREAM_VERSION: u32 = 1;

/// Parents per chunk in [`generate_par`]. A pure constant (never derived
/// from the worker count) so the chunk partition — and therefore every
/// forked stream — is identical no matter how many threads run.
const PAR_CHUNK_PARENTS: usize = 512;

/// Below this many children in a level, `generate_par` runs its chunks
/// inline instead of spawning workers: chunk streams are execution-order
/// independent, so this is pure overhead avoidance with identical bytes.
/// The crossover reflects that spawn + join + per-chunk buffer handoff
/// costs on the order of a hundred microseconds — producing ~8k names
/// inline is cheaper than that.
const PAR_SPAWN_THRESHOLD: usize = 8192;

/// Generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// Scale outside `(0, 1]`.
    BadScale,
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::BadScale => write!(f, "scale must be in (0, 1]"),
        }
    }
}

impl std::error::Error for GenError {}

/// Generate the synthetic stand-in for `kind`.
///
/// Deterministic: identical `(kind, options)` produce byte-identical
/// taxonomies.
pub fn generate(kind: TaxonomyKind, options: GenOptions) -> Result<Taxonomy, GenError> {
    generate_profile(&TaxonomyProfile::of(kind), options)
}

/// Generate the synthetic stand-in for `kind` with `workers` threads,
/// using the chunk-indexed name streams (see module docs).
///
/// Deterministic *across worker counts*: identical `(kind, options)`
/// produce byte-identical taxonomies whether `workers` is 1 or 64,
/// because every chunk's RNG is forked by chunk index, not by thread.
pub fn generate_par(
    kind: TaxonomyKind,
    options: GenOptions,
    workers: usize,
) -> Result<Taxonomy, GenError> {
    generate_profile_par(&TaxonomyProfile::of(kind), options, workers)
}

/// One name probed and accepted into a sibling scope. The buffer holds
/// winner names back to back; `spans` lists them in birth order, and
/// `table` is an epoch-stamped open-addressing set of `(name hash, span
/// index)` used for membership probes — the same membership semantics
/// as the old per-parent `BTreeSet<String>`, with zero per-candidate
/// allocation and O(1) probes. A slot belongs to the current scope only
/// if its epoch stamp matches, so "clearing" between the millions of
/// per-parent scopes is a counter bump, not a table wipe. Name bytes
/// are compared only on hash equality, which matters because sibling
/// names often share long prefixes (every NCBI species under one genus
/// starts with the genus name). Neither the hash nor the probe order
/// can influence output bytes: the table answers only the exact
/// membership question, and duplicates are confirmed byte-wise.
#[derive(Default)]
struct SiblingProber {
    buf: Vec<u8>,
    spans: Vec<(u32, u32)>,
    /// `(hash, span index, epoch)` slots; length is a power of two.
    table: Vec<(u64, u32, u32)>,
    /// Stamp identifying the current scope's live slots.
    epoch: u32,
    /// Index into `spans` where the current scope begins.
    scope_start: usize,
    /// Small scopes skip hashing and byte-compare against the scope's
    /// accepted spans directly. Membership decisions are identical to
    /// the table path (both end in an exact byte comparison), so the
    /// mode never influences output bytes — only probe cost.
    linear: bool,
}

/// Families at or below this size use the linear probe path. Most real
/// taxonomy levels have small fan-out, and a handful of byte compares
/// (which nearly always fail on the first byte between random names)
/// beats hashing every candidate.
const LINEAR_SCOPE_MAX: usize = 12;

/// Seed for sibling-membership hashing; any fixed value works (the hash
/// never influences output bytes, only table placement).
const SIBLING_HASH_SEED: u64 = 0x51B_11A6;

/// Membership hash over whole 8-byte words — the probe set is consulted
/// once per candidate name, so this runs on every generated node.
#[inline]
fn sib_hash(bytes: &[u8]) -> u64 {
    const M: u64 = 0x2545_F491_4F6C_DD1D;
    let mut h = SIBLING_HASH_SEED ^ (bytes.len() as u64).wrapping_mul(M);
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let w = u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes"));
        h = (h ^ w).wrapping_mul(M);
        h ^= h >> 29;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(w)).wrapping_mul(M);
        h ^= h >> 29;
    }
    h ^ (h >> 32)
}

impl SiblingProber {
    fn clear(&mut self) {
        self.buf.clear();
        self.spans.clear();
    }

    fn names(&self) -> impl Iterator<Item = &str> {
        self.spans.iter().map(|&(s, e)| {
            std::str::from_utf8(&self.buf[s as usize..e as usize])
                .expect("generated names are valid UTF-8")
        })
    }

    /// Open a fresh uniqueness scope that will accept `expected` names.
    /// Must be called before any [`SiblingProber::accept`]; sizes the
    /// table to at most 50% load so probe chains stay short.
    fn begin_scope(&mut self, expected: usize) {
        self.scope_start = self.spans.len();
        self.linear = expected <= LINEAR_SCOPE_MAX;
        if self.linear {
            return;
        }
        let need = (expected.max(4) * 2).next_power_of_two();
        if self.table.len() < need || self.epoch == u32::MAX {
            let size = need.max(self.table.len());
            self.table.clear();
            self.table.resize(size, (0, 0, 0));
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// If the candidate occupying `buf[start..]` is new in the current
    /// scope, keep it and return true; otherwise truncate it away.
    fn accept(&mut self, start: usize) -> bool {
        let bytes = self.buf.as_slice();
        let cand = &bytes[start..];
        if self.linear {
            for &(s, e) in &self.spans[self.scope_start..] {
                if &bytes[s as usize..e as usize] == cand {
                    self.buf.truncate(start);
                    return false;
                }
            }
            self.spans.push((start as u32, self.buf.len() as u32));
            return true;
        }
        let hash = sib_hash(cand);
        let mask = self.table.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let (h, si, ep) = self.table[i];
            if ep != self.epoch {
                // First free slot: the candidate is new to this scope.
                self.table[i] = (hash, self.spans.len() as u32, self.epoch);
                self.spans.push((start as u32, self.buf.len() as u32));
                return true;
            }
            if h == hash {
                let (s, e) = self.spans[si as usize];
                if &bytes[s as usize..e as usize] == cand {
                    self.buf.truncate(start);
                    return false;
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Append a sibling-unique name produced by `make` (which appends a
    /// candidate to the buffer; `attempt` counts retries). Byte-for-byte
    /// the semantics of the original `unique_name`: up to 16 fresh draws
    /// (decorated with an ordinal from attempt 4 on), then a certain
    /// numeric-suffix fallback scanned upward from the sibling count.
    fn unique_into(&mut self, mut make: impl FnMut(&mut Vec<u8>, usize)) {
        for attempt in 0..16 {
            let start = self.buf.len();
            make(&mut self.buf, attempt);
            if self.accept(start) {
                return;
            }
        }
        // Certain fallback: a numeric suffix scanned upward from the
        // sibling count is guaranteed to terminate. Cold path, so the
        // per-iteration format allocation is irrelevant.
        let start = self.buf.len();
        make(&mut self.buf, 0);
        let base_end = self.buf.len();
        let mut k = self.spans.len();
        loop {
            self.buf.truncate(base_end);
            self.buf.extend_from_slice(format!(" #{k}").as_bytes());
            if self.accept(start) {
                return;
            }
            k += 1;
        }
    }
}

/// Attempts 0–3 are the base name unchanged (fresh draws); afterwards
/// append a disambiguating ordinal so termination is certain. The
/// ordinal is `attempt - 2`, which is at most 13 — two decimal digits.
fn decorate_into(buf: &mut Vec<u8>, attempt: usize) {
    if attempt >= 4 {
        let v = attempt - 2;
        buf.push(b' ');
        if v >= 10 {
            buf.push(b'0' + (v / 10) as u8);
        }
        buf.push(b'0' + (v % 10) as u8);
    }
}

/// Produce the children of one contiguous run of parents (ids
/// `first_parent..first_parent + per_parent.len()`) into `prober`
/// (names) and `counts` (children per parent, aligned with the run),
/// drawing every name from `rng`. Shared by both generation paths: the
/// legacy path calls it once per level with the continuous sequential
/// stream, the parallel path once per chunk with that chunk's forked
/// stream. Parent names are read straight out of the builder's arena —
/// production only needs `&TaxonomyBuilder`, so no per-level copy of
/// the frontier's names is made.
#[allow(clippy::too_many_arguments)]
fn produce_run(
    namer: &Namer,
    rng: &mut SynthRng,
    level: usize,
    b: &TaxonomyBuilder,
    first_parent: u32,
    per_parent: &[usize],
    prober: &mut SiblingProber,
    scratch: &mut Vec<u8>,
    counts: &mut Vec<u32>,
) {
    counts.clear();
    prober.clear();
    for (slot, &n_children) in per_parent.iter().enumerate() {
        counts.push(n_children as u32);
        if n_children == 0 {
            continue;
        }
        let parent = b.name_of(NodeId::from_raw(first_parent + slot as u32));
        // Per-parent sibling scope: the probe set covers only this
        // parent's accepted names (which stay in the buffer for the
        // splice); opening the next scope retires it in O(1).
        prober.begin_scope(n_children);
        for sib in 0..n_children {
            prober.unique_into(|buf, attempt| {
                namer.child_into(buf, scratch, rng, level, parent, sib);
                decorate_into(buf, attempt);
            });
        }
    }
}

/// Produce `count` root names into `prober` under one shared uniqueness
/// scope (root names are globally unique across the forest).
fn produce_roots(
    namer: &Namer,
    rng: &mut SynthRng,
    count: usize,
    prober: &mut SiblingProber,
    scratch: &mut Vec<u8>,
) {
    prober.clear();
    prober.begin_scope(count);
    for i in 0..count {
        prober.unique_into(|buf, attempt| {
            namer.root_into(buf, scratch, rng, i);
            decorate_into(buf, attempt);
        });
    }
}

/// Generate from an explicit profile (exposed for custom shapes).
pub fn generate_profile(profile: &TaxonomyProfile, options: GenOptions) -> Result<Taxonomy, GenError> {
    if !(options.scale > 0.0 && options.scale <= 1.0) {
        return Err(GenError::BadScale);
    }
    let levels = profile.scaled_levels(options.scale);
    let total: usize = levels.iter().sum();
    let namer = Namer::new(profile.regime);
    let label = profile.kind.label();
    let mut b = TaxonomyBuilder::with_capacity(label, total, 24);

    let mut name_rng = fork(options.seed, label, 0);
    let mut shape_rng = fork(options.seed, label, 1);

    let mut prober = SiblingProber::default();
    let mut scratch = Vec::new();
    let mut counts: Vec<u32> = Vec::new();

    // Roots.
    produce_roots(&namer, &mut name_rng, levels[0], &mut prober, &mut scratch);
    for name in prober.names() {
        b.add_root(name);
    }
    // Every level occupies a contiguous id range, so the frontier is
    // just a range — no per-level id vector is materialized.
    let mut frontier = 0..u32::try_from(b.len()).expect("root count fits u32");

    // Deeper levels: one continuous run per level over the whole
    // frontier, drawing from the single sequential name stream.
    for (level, &count) in levels.iter().enumerate().skip(1) {
        let per_parent = assign_children(&mut shape_rng, frontier.len(), count);
        produce_run(
            &namer,
            &mut name_rng,
            level,
            &b,
            frontier.start,
            &per_parent,
            &mut prober,
            &mut scratch,
            &mut counts,
        );
        frontier = splice_run(&mut b, frontier, &prober, &counts);
    }

    Ok(b.build().expect("profile depths are far below the builder limit"))
}

/// Append a produced run's names under their parents (a contiguous id
/// range) via the bulk builder API, returning the new children's id
/// range. The prober's buffer already holds every child name back to
/// back in final order, so the whole run lands as one name-block copy
/// plus column fills ([`TaxonomyBuilder::extend_level`]) — no per-name
/// appends.
fn splice_run(
    b: &mut TaxonomyBuilder,
    parents: std::ops::Range<u32>,
    prober: &SiblingProber,
    counts: &[u32],
) -> std::ops::Range<u32> {
    // One UTF-8 validation per run (fast ASCII path) instead of one per
    // fragment: production appends raw bytes, the splice re-checks.
    let names = std::str::from_utf8(&prober.buf).expect("generated names are valid UTF-8");
    b.extend_level(parents, counts, names, &prober.spans)
}

/// Generate from an explicit profile with chunk-indexed parallel name
/// streams (see module docs). `workers` only controls execution, never
/// bytes.
pub fn generate_profile_par(
    profile: &TaxonomyProfile,
    options: GenOptions,
    workers: usize,
) -> Result<Taxonomy, GenError> {
    if !(options.scale > 0.0 && options.scale <= 1.0) {
        return Err(GenError::BadScale);
    }
    let workers = workers.max(1);
    let levels = profile.scaled_levels(options.scale);
    let total: usize = levels.iter().sum();
    let namer = Namer::new(profile.regime);
    let label = profile.kind.label();
    let mut b = TaxonomyBuilder::with_capacity(label, total, 24);

    // The shape stream is consumed sequentially (level by level) exactly
    // as in the legacy path, so both paths produce identical forests
    // shape-wise; only the name streams differ.
    let mut shape_rng = fork(options.seed, label, 1);

    let mut scratch = Vec::new();

    // Roots: a single chunk — root uniqueness is scoped to the whole
    // forest, so the root level cannot be split without changing the
    // probing semantics.
    let mut prober = SiblingProber::default();
    let mut counts: Vec<u32> = Vec::new();
    {
        let mut rng = fork(options.seed, label, par_stream_index(0, 0));
        produce_roots(&namer, &mut rng, levels[0], &mut prober, &mut scratch);
    }
    for name in prober.names() {
        b.add_root(name);
    }
    // As in the sequential path, each level's ids are contiguous, so
    // the frontier is a range.
    let mut frontier = 0..u32::try_from(b.len()).expect("root count fits u32");

    for (level, &count) in levels.iter().enumerate().skip(1) {
        let per_parent = assign_children(&mut shape_rng, frontier.len(), count);

        // Fixed partition: chunk boundaries depend only on the frontier
        // length, never on the worker count.
        let n_chunks = frontier.len().div_ceil(PAR_CHUNK_PARENTS);
        let chunk_of = |c: usize| {
            let lo = c * PAR_CHUNK_PARENTS;
            let hi = ((c + 1) * PAR_CHUNK_PARENTS).min(frontier.len());
            lo..hi
        };

        let level_start = u32::try_from(b.len()).expect("taxonomy exceeds u32::MAX nodes");
        if workers == 1 || count < PAR_SPAWN_THRESHOLD || n_chunks == 1 {
            // Inline execution: identical bytes, no spawn overhead.
            // Each chunk is spliced as soon as it is produced, so one
            // prober (and its table/buffer allocations) serves every
            // chunk of the level.
            for c in 0..n_chunks {
                let range = chunk_of(c);
                let mut rng = fork(options.seed, label, par_stream_index(level, c));
                produce_run(
                    &namer,
                    &mut rng,
                    level,
                    &b,
                    frontier.start + range.start as u32,
                    &per_parent[range.clone()],
                    &mut prober,
                    &mut scratch,
                    &mut counts,
                );
                let parents =
                    frontier.start + range.start as u32..frontier.start + range.end as u32;
                splice_run(&mut b, parents, &prober, &counts);
            }
        } else {
            // Scoped workers pull chunk indices off a shared counter and
            // return (chunk, output) pairs; the merge below places each
            // result by chunk index, so scheduling order is invisible in
            // the output. Workers read parent names from the shared
            // `&TaxonomyBuilder`; the builder is only mutated after the
            // scope ends.
            let next_chunk = AtomicUsize::new(0);
            let frontier_ref = &frontier;
            let per_parent_ref = &per_parent;
            let next_chunk_ref = &next_chunk;
            let namer_ref = &namer;
            let b_ref = &b;
            let produced: Vec<Vec<(usize, SiblingProber, Vec<u32>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers.min(n_chunks))
                        .map(|_| {
                            scope.spawn(move || {
                                let mut out = Vec::new();
                                let mut worker_scratch = Vec::new();
                                loop {
                                    // Relaxed: the counter only hands out distinct
                                    // chunk indices; results merge positionally.
                                    let c = next_chunk_ref.fetch_add(1, Ordering::Relaxed);
                                    if c >= n_chunks {
                                        break;
                                    }
                                    let lo = c * PAR_CHUNK_PARENTS;
                                    let hi =
                                        ((c + 1) * PAR_CHUNK_PARENTS).min(frontier_ref.len());
                                    let mut rng =
                                        fork(options.seed, label, par_stream_index(level, c));
                                    let mut chunk_prober = SiblingProber::default();
                                    let mut chunk_counts: Vec<u32> = Vec::new();
                                    produce_run(
                                        namer_ref,
                                        &mut rng,
                                        level,
                                        b_ref,
                                        frontier_ref.start + lo as u32,
                                        &per_parent_ref[lo..hi],
                                        &mut chunk_prober,
                                        &mut worker_scratch,
                                        &mut chunk_counts,
                                    );
                                    out.push((c, chunk_prober, chunk_counts));
                                }
                                out
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("chunk worker thread must not panic"))
                        .collect()
                });
            let mut slots: Vec<Option<(SiblingProber, Vec<u32>)>> = Vec::new();
            slots.resize_with(n_chunks, || None);
            for (c, p, k) in produced.into_iter().flatten() {
                slots[c] = Some((p, k));
            }
            // Splice in chunk order: byte layout depends only on the
            // chunk partition, which is fixed.
            for (c, slot) in slots.into_iter().enumerate() {
                let (chunk_prober, chunk_counts) =
                    slot.expect("every chunk index below n_chunks is produced exactly once");
                let lo = frontier.start + (c * PAR_CHUNK_PARENTS) as u32;
                let parents = lo..lo + chunk_counts.len() as u32;
                splice_run(&mut b, parents, &chunk_prober, &chunk_counts);
            }
        }

        frontier = level_start..u32::try_from(b.len()).expect("taxonomy exceeds u32::MAX nodes");
    }

    Ok(b.build().expect("profile depths are far below the builder limit"))
}

/// Stream index for the chunk-forked name RNG of `(level, chunk)`.
/// Indices 0 and 1 are the legacy sequential name/shape streams, so the
/// parallel discipline starts at `(2 + level) << 32` to stay disjoint.
fn par_stream_index(level: usize, chunk: usize) -> u64 {
    ((2 + level as u64) << 32) | chunk as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_taxonomy::{validate, TaxonomyStats};

    fn opts(scale: f64) -> GenOptions {
        GenOptions { seed: 42, scale }
    }

    #[test]
    fn ebay_matches_table_1_exactly() {
        let t = generate(TaxonomyKind::Ebay, opts(1.0)).unwrap();
        validate(&t).unwrap();
        let s = TaxonomyStats::compute(&t);
        assert_eq!(s.num_entities, 595);
        assert_eq!(s.num_trees, 13);
        assert_eq!(s.nodes_per_level, vec![13, 110, 472]);
    }

    #[test]
    fn google_matches_table_1_exactly() {
        let t = generate(TaxonomyKind::Google, opts(1.0)).unwrap();
        validate(&t).unwrap();
        let s = TaxonomyStats::compute(&t);
        assert_eq!(s.nodes_per_level, vec![21, 192, 1349, 2203, 1830]);
    }

    #[test]
    fn all_kinds_generate_at_small_scale() {
        for kind in TaxonomyKind::ALL {
            let t = generate(kind, opts(0.01)).unwrap();
            validate(&t).unwrap();
            assert!(!t.is_empty(), "{kind}");
            assert_eq!(
                t.num_levels(),
                TaxonomyProfile::of(kind).num_levels(),
                "{kind} should keep its depth even when scaled"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(TaxonomyKind::Glottolog, opts(0.05)).unwrap();
        let b = generate(TaxonomyKind::Glottolog, opts(0.05)).unwrap();
        assert_eq!(a.to_tsv(), b.to_tsv());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(TaxonomyKind::Ebay, GenOptions { seed: 1, scale: 1.0 }).unwrap();
        let b = generate(TaxonomyKind::Ebay, GenOptions { seed: 2, scale: 1.0 }).unwrap();
        assert_ne!(a.to_tsv(), b.to_tsv());
    }

    #[test]
    fn sibling_names_are_unique() {
        let t = generate(TaxonomyKind::Oae, opts(0.2)).unwrap();
        for id in t.ids() {
            let kids = t.children(id);
            let mut names: Vec<&str> = kids.iter().map(|&k| t.name(k)).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "duplicate sibling names under {}", t.name(id));
        }
    }

    #[test]
    fn par_sibling_names_are_unique() {
        let t = generate_par(TaxonomyKind::Oae, opts(0.2), 2).unwrap();
        for id in t.ids() {
            let kids = t.children(id);
            let mut names: Vec<&str> = kids.iter().map(|&k| t.name(k)).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "duplicate sibling names under {}", t.name(id));
        }
    }

    #[test]
    fn par_shape_matches_sequential_shape() {
        for kind in [TaxonomyKind::Ebay, TaxonomyKind::Glottolog, TaxonomyKind::Icd10Cm] {
            let a = generate(kind, opts(0.1)).unwrap();
            let b = generate_par(kind, opts(0.1), 2).unwrap();
            validate(&b).unwrap();
            assert_eq!(a.len(), b.len(), "{kind}");
            assert_eq!(a.num_levels(), b.num_levels(), "{kind}");
            for level in 0..a.num_levels() {
                assert_eq!(
                    a.nodes_at_level(level).len(),
                    b.nodes_at_level(level).len(),
                    "{kind} level {level}"
                );
            }
            // Parent structure is identical node-for-node (the shape
            // stream is shared); only names differ.
            for (x, y) in a.ids().zip(b.ids()) {
                assert_eq!(a.parent(x).map(NodeId::raw), b.parent(y).map(NodeId::raw));
            }
        }
    }

    #[test]
    fn par_is_worker_count_invariant() {
        for kind in [TaxonomyKind::Ebay, TaxonomyKind::Oae] {
            let t1 = generate_par(kind, opts(0.15), 1).unwrap();
            let t4 = generate_par(kind, opts(0.15), 4).unwrap();
            assert_eq!(t1.to_tsv(), t4.to_tsv(), "{kind}");
        }
    }

    #[test]
    fn most_nodes_have_uncles() {
        // Hard-negative sampling needs uncles; the shape algorithm should
        // make them near-universal.
        let t = generate(TaxonomyKind::Amazon, opts(0.1)).unwrap();
        let mut with = 0usize;
        let mut total = 0usize;
        for level in 1..t.num_levels() {
            for &id in t.nodes_at_level(level) {
                total += 1;
                if !t.uncles(id).is_empty() {
                    with += 1;
                }
            }
        }
        assert!(with as f64 / total as f64 > 0.95, "{with}/{total} nodes have uncles");
    }

    #[test]
    fn ncbi_species_level_names_embed_genus() {
        let t = generate(TaxonomyKind::Ncbi, opts(0.002)).unwrap();
        let species_level = t.num_levels() - 1;
        let mut embeds = 0usize;
        let nodes = t.nodes_at_level(species_level);
        for &id in nodes {
            let parent = t.parent(id).unwrap();
            if t.name(id).starts_with(t.name(parent)) {
                embeds += 1;
            }
        }
        assert!(
            embeds as f64 / nodes.len() as f64 > 0.9,
            "{embeds}/{} species embed the genus",
            nodes.len()
        );
    }

    #[test]
    fn bad_scale_is_rejected() {
        assert_eq!(generate(TaxonomyKind::Ebay, opts(0.0)).unwrap_err(), GenError::BadScale);
        assert_eq!(generate(TaxonomyKind::Ebay, opts(1.5)).unwrap_err(), GenError::BadScale);
        assert_eq!(generate_par(TaxonomyKind::Ebay, opts(0.0), 2).unwrap_err(), GenError::BadScale);
    }
}

