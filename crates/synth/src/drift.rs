//! Release drift: evolving a taxonomy the way curated taxonomies evolve
//! between versions (Glottolog 4.7 → 4.8, NCBI monthly dumps, …).
//!
//! [`evolve`] applies three kinds of curation edits, mostly near the
//! leaves — which is where real churn concentrates and why the paper's
//! §5.3 replacement of deep levels saves *maintenance*, not just
//! construction:
//!
//! * **additions** — new children under existing internal nodes, named
//!   by the taxonomy's own regime;
//! * **removals** — leaf deletions;
//! * **moves** — a leaf re-parented to an uncle (re-classification).

use crate::kind::TaxonomyKind;
use crate::names::Namer;
use crate::profiles::TaxonomyProfile;
use crate::rng::fork;
use crate::rng::SliceRandom;
use crate::rng::Rng;
use taxoglimpse_taxonomy::{NodeId, Taxonomy, TaxonomyBuilder};

/// Drift intensity per release.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Fraction of leaves added (relative to current leaf count).
    pub add_rate: f64,
    /// Fraction of leaves removed.
    pub remove_rate: f64,
    /// Fraction of leaves re-parented to an uncle.
    pub move_rate: f64,
}

impl Default for DriftConfig {
    /// Typical annual churn of a curated taxonomy: a few percent.
    fn default() -> Self {
        DriftConfig { add_rate: 0.03, remove_rate: 0.01, move_rate: 0.01 }
    }
}

/// Produce the "next release" of `taxonomy`.
pub fn evolve(taxonomy: &Taxonomy, kind: TaxonomyKind, config: DriftConfig, seed: u64) -> Taxonomy {
    let mut rng = fork(seed, "drift", kind as u64);
    let namer = Namer::new(TaxonomyProfile::of(kind).regime);

    let leaves = taxonomy.leaves();
    let n_remove = ((leaves.len() as f64) * config.remove_rate).round() as usize;
    let n_move = ((leaves.len() as f64) * config.move_rate).round() as usize;
    let n_add = ((leaves.len() as f64) * config.add_rate).round() as usize;

    let mut shuffled = leaves.clone();
    shuffled.shuffle(&mut rng);
    let removed: std::collections::BTreeSet<NodeId> =
        shuffled.iter().copied().take(n_remove).collect();
    let moved: std::collections::BTreeMap<NodeId, NodeId> = shuffled
        .iter()
        .copied()
        .skip(n_remove)
        .take(n_move)
        .filter_map(|leaf| {
            let uncles = taxonomy.uncles(leaf);
            uncles.choose(&mut rng).map(|&u| (leaf, u))
        })
        .collect();

    // Rebuild level by level, applying removals and moves, then append
    // additions.
    let mut b = TaxonomyBuilder::with_capacity(taxonomy.label(), taxonomy.len() + n_add, 24);
    let mut remap: Vec<Option<NodeId>> = vec![None; taxonomy.len()];
    for level in 0..taxonomy.num_levels() {
        for &id in taxonomy.nodes_at_level(level) {
            if removed.contains(&id) {
                continue;
            }
            let target_parent = moved.get(&id).copied().or_else(|| taxonomy.parent(id));
            let new_id = match target_parent {
                None => b.add_root(taxonomy.name(id)),
                Some(p) => match remap[p.index()] {
                    Some(np) => b.add_child(np, taxonomy.name(id)),
                    None => continue, // parent removed ⇒ subtree goes too
                },
            };
            remap[id.index()] = Some(new_id);
        }
    }

    // Additions: fresh children under random internal nodes that kept
    // their place, at the level below their parent.
    let internal: Vec<NodeId> = taxonomy
        .ids()
        .filter(|&id| !taxonomy.is_leaf(id) && remap[id.index()].is_some())
        .collect();
    for i in 0..n_add {
        if internal.is_empty() {
            break;
        }
        let &parent_old = internal.choose(&mut rng).expect("internal node list checked non-empty above");
        let parent_new = remap[parent_old.index()].expect("filtered to kept nodes");
        let level = taxonomy.level(parent_old) + 1;
        let parent_name = taxonomy.name(parent_old).to_owned();
        let name = namer.child(&mut rng, level, &parent_name, i);
        // Avoid duplicating an existing sibling name.
        let name = if rng.gen_bool(0.02) { format!("{name} (new)") } else { name };
        b.add_child(parent_new, &name);
    }

    b.build().expect("drift never deepens the taxonomy")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenOptions};
    use taxoglimpse_taxonomy::diff::diff;
    use taxoglimpse_taxonomy::validate;

    fn base() -> Taxonomy {
        generate(TaxonomyKind::Glottolog, GenOptions { seed: 50, scale: 0.1 }).unwrap()
    }

    #[test]
    fn evolved_release_is_valid_and_differs() {
        let v1 = base();
        let v2 = evolve(&v1, TaxonomyKind::Glottolog, DriftConfig::default(), 1);
        validate(&v2).unwrap();
        let d = diff(&v1, &v2);
        assert!(!d.is_empty(), "default drift must change something");
        assert!(!d.added.is_empty());
        assert!(!d.removed.is_empty());
    }

    #[test]
    fn drift_magnitude_tracks_config() {
        let v1 = base();
        let leaves = v1.leaves().len() as f64;
        let config = DriftConfig { add_rate: 0.05, remove_rate: 0.02, move_rate: 0.0 };
        let v2 = evolve(&v1, TaxonomyKind::Glottolog, config, 2);
        let d = diff(&v1, &v2);
        let added = d.added.len() as f64;
        let removed = d.removed.len() as f64;
        assert!((added - leaves * 0.05).abs() < leaves * 0.02, "added {added}");
        assert!((removed - leaves * 0.02).abs() < leaves * 0.01, "removed {removed}");
    }

    #[test]
    fn zero_drift_is_identity() {
        let v1 = base();
        let v2 = evolve(&v1, TaxonomyKind::Glottolog, DriftConfig { add_rate: 0.0, remove_rate: 0.0, move_rate: 0.0 }, 3);
        assert!(diff(&v1, &v2).is_empty());
    }

    #[test]
    fn moves_reparent_to_uncles() {
        let v1 = base();
        let config = DriftConfig { add_rate: 0.0, remove_rate: 0.0, move_rate: 0.05 };
        let v2 = evolve(&v1, TaxonomyKind::Glottolog, config, 4);
        validate(&v2).unwrap();
        let d = diff(&v1, &v2);
        assert!(!d.moved.is_empty(), "5% move rate must move something");
        // Node counts unchanged by pure moves.
        assert_eq!(v1.len(), v2.len());
    }

    #[test]
    fn churn_concentrates_at_the_leaves() {
        let v1 = base();
        let v2 = evolve(&v1, TaxonomyKind::Glottolog, DriftConfig::default(), 5);
        let d = diff(&v1, &v2);
        // Every change touches the leaf region (depth >= 2 of a 6-level
        // taxonomy): none of the drift operations edits the top levels.
        assert_eq!(d.changes_at_or_below(1), d.total_changes());
    }

    #[test]
    fn deterministic() {
        let v1 = base();
        let a = evolve(&v1, TaxonomyKind::Glottolog, DriftConfig::default(), 6);
        let b = evolve(&v1, TaxonomyKind::Glottolog, DriftConfig::default(), 6);
        assert_eq!(a.to_tsv(), b.to_tsv());
    }
}
