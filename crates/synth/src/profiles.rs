//! Structural profiles of the ten taxonomies — the paper's Table 1.
//!
//! Each profile records the exact per-level node counts, which the
//! generator reproduces verbatim at `scale = 1.0`.

use crate::kind::TaxonomyKind;

/// How child names relate to parent names in a domain — the surface-form
/// regime the paper's analysis repeatedly leans on (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameRegime {
    /// Compound product noun phrases; children sometimes reuse the
    /// parent's head noun ("Kitchen Appliances" → "Small Kitchen
    /// Appliances").
    Shopping,
    /// CamelCase web types; children often extend the parent stem.
    SchemaOrg,
    /// Research-concept phrases.
    AcmCcs,
    /// Feature-class codes plus descriptions.
    GeoNames,
    /// Language/family names — children diverge from parents (low
    /// surface similarity; the regime under which LLMs fare worst).
    Glottolog,
    /// Hierarchical disease codes: a child's code extends its parent's.
    Icd,
    /// Adverse-event phrases ending in "AE"; children embed the parent
    /// phrase nearly whole (very high similarity).
    Oae,
    /// Linnean ranks; the species level embeds the genus name (the
    /// paper's explanation for the NCBI last-level accuracy uplift).
    Ncbi,
}

/// Structural profile of one taxonomy (one row of Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct TaxonomyProfile {
    /// Which taxonomy this profiles.
    pub kind: TaxonomyKind,
    /// Exact node count per level, root level first. The first entry is
    /// also the number of trees.
    pub nodes_per_level: Vec<usize>,
    /// Name-morphology regime.
    pub regime: NameRegime,
    /// Figure-2 popularity anchor: mean google-hit count per concept
    /// (order of magnitude; the paper reports the ordering, not exact
    /// values).
    pub popularity_hits: f64,
}

impl TaxonomyProfile {
    /// The canonical profile for `kind`, straight from Table 1.
    pub fn of(kind: TaxonomyKind) -> Self {
        let (nodes_per_level, regime, popularity_hits): (Vec<usize>, _, f64) = match kind {
            TaxonomyKind::Ebay => {
                (vec![13, 110, 472], NameRegime::Shopping, 2.0e8)
            }
            TaxonomyKind::Amazon => (
                vec![41, 507, 3910, 13579, 25777],
                NameRegime::Shopping,
                9.0e7,
            ),
            TaxonomyKind::Google => {
                (vec![21, 192, 1349, 2203, 1830], NameRegime::Shopping, 6.0e7)
            }
            TaxonomyKind::Schema => (
                vec![3, 17, 215, 403, 436, 272],
                NameRegime::SchemaOrg,
                1.1e8,
            ),
            TaxonomyKind::AcmCcs => {
                (vec![13, 84, 543, 1087, 386], NameRegime::AcmCcs, 8.0e6)
            }
            TaxonomyKind::GeoNames => (vec![9, 680], NameRegime::GeoNames, 3.0e6),
            TaxonomyKind::Glottolog => (
                vec![245, 712, 1048, 1205, 1366, 7393],
                NameRegime::Glottolog,
                9.0e5,
            ),
            TaxonomyKind::Icd10Cm => {
                (vec![22, 155, 963, 3383], NameRegime::Icd, 2.5e6)
            }
            TaxonomyKind::Oae => {
                (vec![181, 1854, 3817, 2587, 1108], NameRegime::Oae, 4.0e5)
            }
            TaxonomyKind::Ncbi => (
                vec![53, 309, 514, 1859, 10215, 107615, 2069560],
                NameRegime::Ncbi,
                1.5e5,
            ),
        };
        TaxonomyProfile { kind, nodes_per_level, regime, popularity_hits }
    }

    /// Total entity count (the Table-1 `# of entities` column).
    pub fn num_entities(&self) -> usize {
        self.nodes_per_level.iter().sum()
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.nodes_per_level.len()
    }

    /// Number of trees (root-level node count).
    pub fn num_trees(&self) -> usize {
        self.nodes_per_level.first().copied().unwrap_or(0)
    }

    /// Per-level counts scaled by `scale` (rounded, floored at the tree
    /// count for level 0 and at 2 elsewhere so sibling structure
    /// survives), used for test-sized generations.
    pub fn scaled_levels(&self, scale: f64) -> Vec<usize> {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        if (scale - 1.0).abs() < f64::EPSILON {
            return self.nodes_per_level.clone();
        }
        self.nodes_per_level
            .iter()
            .enumerate()
            .map(|(level, &n)| {
                let scaled = ((n as f64) * scale).round() as usize;
                if level == 0 {
                    // Keep at least 4 trees so root-level negatives and
                    // 4-option MCQs (true parent + 3 distractors) exist.
                    scaled.clamp(4.min(n), n)
                } else {
                    scaled.clamp(2.min(n), n)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `# of entities` column of Table 1, verified against the shapes.
    #[test]
    fn entity_totals_match_table_1() {
        let expected = [
            (TaxonomyKind::Ebay, 595),
            (TaxonomyKind::Amazon, 43814),
            (TaxonomyKind::Google, 5595),
            (TaxonomyKind::Schema, 1346),
            (TaxonomyKind::AcmCcs, 2113),
            (TaxonomyKind::GeoNames, 689),
            (TaxonomyKind::Glottolog, 11969),
            (TaxonomyKind::Icd10Cm, 4523),
            (TaxonomyKind::Oae, 9547),
            (TaxonomyKind::Ncbi, 2190125),
        ];
        for (kind, total) in expected {
            assert_eq!(TaxonomyProfile::of(kind).num_entities(), total, "{kind}");
        }
    }

    #[test]
    fn level_and_tree_counts_match_table_1() {
        let expected = [
            (TaxonomyKind::Ebay, 3, 13),
            (TaxonomyKind::Amazon, 5, 41),
            (TaxonomyKind::Google, 5, 21),
            (TaxonomyKind::Schema, 6, 3),
            (TaxonomyKind::AcmCcs, 5, 13),
            (TaxonomyKind::GeoNames, 2, 9),
            (TaxonomyKind::Glottolog, 6, 245),
            (TaxonomyKind::Icd10Cm, 4, 22),
            (TaxonomyKind::Oae, 5, 181),
            (TaxonomyKind::Ncbi, 7, 53),
        ];
        for (kind, levels, trees) in expected {
            let p = TaxonomyProfile::of(kind);
            assert_eq!(p.num_levels(), levels, "{kind} levels");
            assert_eq!(p.num_trees(), trees, "{kind} trees");
        }
    }

    #[test]
    fn scaled_levels_identity_at_one() {
        let p = TaxonomyProfile::of(TaxonomyKind::Ncbi);
        assert_eq!(p.scaled_levels(1.0), p.nodes_per_level);
    }

    #[test]
    fn scaled_levels_shrink_but_keep_structure() {
        let p = TaxonomyProfile::of(TaxonomyKind::Ncbi);
        let s = p.scaled_levels(0.01);
        assert_eq!(s.len(), p.num_levels());
        assert!(s[0] >= 3);
        assert!(s.iter().all(|&n| n >= 2));
        assert!(s[6] < p.nodes_per_level[6] / 50);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn scaled_levels_reject_bad_scale() {
        TaxonomyProfile::of(TaxonomyKind::Ebay).scaled_levels(0.0);
    }

    #[test]
    fn popularity_preserves_paper_ordering() {
        // Figure 2: common taxonomies (eBay, Schema, Amazon, Google) are
        // more popular than all specialized ones.
        let common_min = [TaxonomyKind::Ebay, TaxonomyKind::Schema, TaxonomyKind::Amazon, TaxonomyKind::Google]
            .iter()
            .map(|&k| TaxonomyProfile::of(k).popularity_hits)
            .fold(f64::INFINITY, f64::min);
        let specialized_max = [
            TaxonomyKind::AcmCcs,
            TaxonomyKind::GeoNames,
            TaxonomyKind::Glottolog,
            TaxonomyKind::Icd10Cm,
            TaxonomyKind::Oae,
            TaxonomyKind::Ncbi,
        ]
        .iter()
        .map(|&k| TaxonomyProfile::of(k).popularity_hits)
        .fold(0.0, f64::max);
        assert!(common_min > specialized_max);
    }
}
