//! Parent-assignment: distributing a level's nodes over the level above.
//!
//! Given `parents` nodes at level `k-1` and a target of `children` nodes
//! at level `k`, [`assign_children`] produces a per-parent child count
//! such that:
//!
//! * counts sum exactly to `children`;
//! * whenever the shape allows (`children >= 2 * active parents`), every
//!   parent with any children has **at least two** — so almost every
//!   node has a sibling and almost every node's parent has siblings,
//!   which the benchmark's *uncle* (hard-negative) sampling relies on;
//! * the distribution is right-skewed (a few large families, many small
//!   ones), like real taxonomies.

use crate::rng::SynthRng;
use crate::rng::SliceRandom;
use crate::rng::Rng;

/// Compute a child count per parent (length = `parents`), summing to
/// `children`. Deterministic given the RNG state.
///
/// # Panics
/// Panics if `parents == 0` while `children > 0`.
pub fn assign_children(rng: &mut SynthRng, parents: usize, children: usize) -> Vec<usize> {
    if children == 0 {
        return vec![0; parents];
    }
    assert!(parents > 0, "cannot assign {children} children to zero parents");

    // Choose how many parents are internal (get children at all). Aim for
    // most parents being internal, but keep a floor of two children per
    // internal parent when the shape allows it.
    let max_active_for_two_each = (children / 2).max(1);
    let active = parents.min(max_active_for_two_each).max(1);

    // Pick which parents are active, uniformly.
    let mut idx: Vec<usize> = (0..parents).collect();
    idx.shuffle(rng);
    let active_idx = &idx[..active];

    let min_each = if children >= 2 * active { 2 } else { 1 };
    let base = min_each * active;
    let remaining = children - base.min(children);

    // Skewed weights: w_i = u^alpha with alpha > 1 concentrates mass.
    let mut weights: Vec<f64> = (0..active).map(|_| rng.gen::<f64>().powf(2.5) + 1e-9).collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total;
    }

    // Largest-remainder apportionment of `remaining` over the weights.
    let mut counts = vec![0usize; active];
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(active);
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let exact = w * remaining as f64;
        let floor = exact.floor() as usize;
        counts[i] = floor;
        assigned += floor;
        fracs.push((i, exact - floor as f64));
    }
    let mut leftover = remaining - assigned;
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for &(i, _) in fracs.iter().cycle().take(leftover.min(fracs.len() * 2)) {
        if leftover == 0 {
            break;
        }
        counts[i] += 1;
        leftover -= 1;
    }
    // Degenerate safety: dump any residue on the first active parent.
    counts[0] += leftover;

    let mut out = vec![0usize; parents];
    for (slot, &p) in active_idx.iter().enumerate() {
        out[p] = counts[slot] + min_each;
    }
    // When children < active * min_each (tiny levels), trim overshoot.
    let mut sum: usize = out.iter().sum();
    let mut i = 0;
    while sum > children {
        if out[idx[i % parents]] > 0 {
            out[idx[i % parents]] -= 1;
            sum -= 1;
        }
        i += 1;
    }
    debug_assert_eq!(out.iter().sum::<usize>(), children);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fork;

    #[test]
    fn sums_exactly() {
        let mut rng = fork(1, "shape", 0);
        for &(p, c) in &[(13usize, 110usize), (110, 472), (41, 507), (107615, 206956), (1, 1), (5, 2), (10, 0), (3, 100000)] {
            let counts = assign_children(&mut rng, p, c);
            assert_eq!(counts.len(), p);
            assert_eq!(counts.iter().sum::<usize>(), c, "p={p} c={c}");
        }
    }

    #[test]
    fn active_parents_have_at_least_two_children_when_possible() {
        let mut rng = fork(2, "shape", 0);
        let counts = assign_children(&mut rng, 50, 300);
        for &c in &counts {
            assert!(c == 0 || c >= 2, "active parent with a single child: {c}");
        }
        // And most parents should be active for a 6x ratio.
        let active = counts.iter().filter(|&&c| c > 0).count();
        assert!(active >= 40, "only {active} active parents");
    }

    #[test]
    fn falls_back_to_one_child_when_tight() {
        let mut rng = fork(3, "shape", 0);
        // 10 children over 8 parents: can't give everyone 2.
        let counts = assign_children(&mut rng, 8, 10);
        assert_eq!(counts.iter().sum::<usize>(), 10);
    }

    #[test]
    fn zero_children_is_all_zero() {
        let mut rng = fork(4, "shape", 0);
        assert_eq!(assign_children(&mut rng, 7, 0), vec![0; 7]);
    }

    #[test]
    #[should_panic(expected = "zero parents")]
    fn zero_parents_with_children_panics() {
        let mut rng = fork(5, "shape", 0);
        assign_children(&mut rng, 0, 3);
    }

    #[test]
    fn distribution_is_skewed() {
        let mut rng = fork(6, "shape", 0);
        let counts = assign_children(&mut rng, 100, 10_000);
        let max = *counts.iter().max().unwrap();
        let mean = 10_000.0 / 100.0;
        assert!(max as f64 > mean * 1.5, "max {max} not skewed above mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = assign_children(&mut fork(7, "shape", 1), 20, 100);
        let b = assign_children(&mut fork(7, "shape", 1), 20, 100);
        assert_eq!(a, b);
    }
}
