//! Instance generation for the instance-typing study (§4.5).
//!
//! The paper defines instances differently per taxonomy:
//!
//! * **Amazon / Google** — product names crawled under each leaf
//!   category. We synthesize product titles ("Brand Modifier Head")
//!   whose head noun echoes the category, matching how real
//!   listings name products.
//! * **ICD-10-CM, NCBI, Glottolog, OAE** — the taxonomy's own leaf
//!   entities *are* the instances (diseases with causes, species,
//!   languages, adverse events), so no new strings are needed; we expose
//!   the leaf names directly.
//! * **eBay, Schema.org, ACM-CCS, GeoNames** — skipped, exactly as in
//!   the paper (no valid/crawlable instances).

use crate::kind::TaxonomyKind;
use crate::morphology::{capitalize, pools, pseudo_word, WordStyle};
use crate::rng::{fork, SynthRng};
use crate::rng::SliceRandom;
use crate::rng::Rng;
use taxoglimpse_taxonomy::{NodeId, Taxonomy};

/// An instance attached to a leaf concept of a taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Instance display name.
    pub name: String,
    /// The leaf concept the instance belongs to.
    pub leaf: NodeId,
}

/// Generates instances for the six instance-typing taxonomies.
#[derive(Debug, Clone, Copy)]
pub struct InstanceGenerator {
    kind: TaxonomyKind,
    seed: u64,
}

impl InstanceGenerator {
    /// Create a generator for `kind`; returns `None` for the four
    /// taxonomies the paper excludes from instance typing.
    pub fn new(kind: TaxonomyKind, seed: u64) -> Option<Self> {
        kind.has_instances().then_some(InstanceGenerator { kind, seed })
    }

    /// The taxonomy kind this generator serves.
    pub fn kind(&self) -> TaxonomyKind {
        self.kind
    }

    /// Whether instances are synthesized strings (products) rather than
    /// the taxonomy's own leaves.
    pub fn synthesizes(&self) -> bool {
        matches!(self.kind, TaxonomyKind::Amazon | TaxonomyKind::Google)
    }

    /// Produce up to `per_leaf` instances under each of the given leaves.
    ///
    /// For leaf-as-instance taxonomies `per_leaf` is capped at 1 (the
    /// leaf itself).
    pub fn instances_for(&self, taxonomy: &Taxonomy, leaves: &[NodeId], per_leaf: usize) -> Vec<Instance> {
        let mut out = Vec::new();
        if self.synthesizes() {
            let mut rng = fork(self.seed, "instances", self.kind as u64);
            for &leaf in leaves {
                for i in 0..per_leaf {
                    out.push(Instance {
                        name: product_title(&mut rng, taxonomy.name(leaf), i),
                        leaf,
                    });
                }
            }
        } else {
            for &leaf in leaves {
                out.push(Instance { name: taxonomy.name(leaf).to_owned(), leaf });
            }
        }
        out
    }
}

/// Synthesize a product title under a category name. The title ends with
/// a singular-ish form of the category head noun, like real listings.
fn product_title(rng: &mut SynthRng, category: &str, ordinal: usize) -> String {
    let brand = capitalize(&pseudo_word(rng, WordStyle::Plain, 2));
    let modifier = pools::PRODUCT_MODS.choose(rng).expect("static name pools are non-empty");
    let head = category.split(' ').next_back().unwrap_or(category);
    let head = head.strip_suffix('s').unwrap_or(head);
    let series = if rng.gen_bool(0.5) {
        format!(" {}{}", ['X', 'S', 'Z', 'M', 'P'][ordinal % 5], 100 + (ordinal * 37) % 900)
    } else {
        String::new()
    };
    format!("{brand} {modifier} {head}{series}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenOptions};

    #[test]
    fn excluded_kinds_yield_none() {
        for kind in [TaxonomyKind::Ebay, TaxonomyKind::Schema, TaxonomyKind::AcmCcs, TaxonomyKind::GeoNames] {
            assert!(InstanceGenerator::new(kind, 1).is_none(), "{kind}");
        }
    }

    #[test]
    fn product_instances_echo_category_head() {
        let t = generate(TaxonomyKind::Google, GenOptions { seed: 9, scale: 0.05 }).unwrap();
        let gen = InstanceGenerator::new(TaxonomyKind::Google, 9).unwrap();
        assert!(gen.synthesizes());
        let leaves = t.leaves();
        let instances = gen.instances_for(&t, &leaves[..5.min(leaves.len())], 3);
        assert_eq!(instances.len(), 3 * 5.min(leaves.len()));
        for inst in &instances {
            let head = t.name(inst.leaf).split(' ').next_back().unwrap();
            let head = head.strip_suffix('s').unwrap_or(head);
            assert!(inst.name.contains(head), "{} should echo {head}", inst.name);
        }
    }

    #[test]
    fn leaf_taxonomies_expose_leaves_directly() {
        let t = generate(TaxonomyKind::Glottolog, GenOptions { seed: 9, scale: 0.02 }).unwrap();
        let gen = InstanceGenerator::new(TaxonomyKind::Glottolog, 9).unwrap();
        assert!(!gen.synthesizes());
        let leaves = t.leaves();
        let instances = gen.instances_for(&t, &leaves[..4.min(leaves.len())], 10);
        // per_leaf is ignored for leaf-as-instance taxonomies.
        assert_eq!(instances.len(), 4.min(leaves.len()));
        for inst in &instances {
            assert_eq!(inst.name, t.name(inst.leaf));
        }
    }

    #[test]
    fn instances_are_deterministic() {
        let t = generate(TaxonomyKind::Amazon, GenOptions { seed: 5, scale: 0.02 }).unwrap();
        let leaves = t.leaves();
        let g1 = InstanceGenerator::new(TaxonomyKind::Amazon, 5).unwrap();
        let g2 = InstanceGenerator::new(TaxonomyKind::Amazon, 5).unwrap();
        let a = g1.instances_for(&t, &leaves[..3], 2);
        let b = g2.instances_for(&t, &leaves[..3], 2);
        assert_eq!(a, b);
    }
}
