//! Deterministic, forkable randomness — self-contained.
//!
//! Every generator in this crate derives its random stream from a
//! `(master seed, purpose tag, index)` triple via [`fork`], so adding a
//! new consumer never perturbs the output of existing ones, and the same
//! options always produce byte-identical taxonomies.
//!
//! The stream cipher is an in-tree ChaCha8 (RFC 8439 block function at
//! eight rounds) keyed from the fork hash, with no external crates
//! involved. That keeps the byte streams *stable by construction*:
//! nothing short of editing this file — no toolchain bump, no dependency
//! upgrade — can change the output for a given `(seed, tag, index)`.
//! The [`Rng`] and [`SliceRandom`] traits expose the same call surface
//! the workspace previously used (`gen`, `gen_range`, `gen_bool`,
//! `choose`, `shuffle`), so consumers only swap their `use` lines.

/// The RNG used throughout the workspace. ChaCha8 is portable across
/// platforms, statistically solid, and fast enough to name two million
/// species in well under a second.
///
/// The refill computes **consecutive blocks lane-parallel**: every
/// vector op below works on `[u32; L]` where lane `b` belongs to block
/// `counter + b`, which the compiler auto-vectorizes. On x86-64 with
/// AVX2 (detected at runtime) all eight buffered blocks run as one
/// batch whose rows each fill a 256-bit register; elsewhere the same
/// generic code runs as two four-lane batches sized for 128-bit
/// registers. The emitted keystream is byte-for-byte the sequential
/// ChaCha8 stream either way (the reference-vector test pins it); only
/// the batch width differs.
#[derive(Debug, Clone)]
pub struct SynthRng {
    /// 256-bit key, fixed per stream.
    key: [u32; 8],
    /// Block counter (low word of the ChaCha counter/nonce row).
    counter: u64,
    /// Decoded output of the current block batch.
    buf: [u64; BUF_WORDS],
    /// Next unread word in `buf`; `BUF_WORDS` means exhausted.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Lanes per batch on the portable path (128-bit registers).
const LANES: usize = 4;
/// Blocks buffered per refill (one AVX2 batch / two portable batches).
const BATCH_BLOCKS: usize = 8;
/// u64 words buffered per refill: 8 per 64-byte block.
const BUF_WORDS: usize = 8 * BATCH_BLOCKS;

impl SynthRng {
    /// Key a fresh stream from a 64-bit seed (SplitMix64 key schedule).
    pub fn seed_from_u64(seed: u64) -> SynthRng {
        let mut key = [0u32; 8];
        let mut s = seed;
        for pair in key.chunks_mut(2) {
            s = mix64(s);
            pair[0] = s as u32;
            pair[1] = (s >> 32) as u32;
        }
        SynthRng { key, counter: 0, buf: [0; BUF_WORDS], cursor: BUF_WORDS }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        if self.cursor == BUF_WORDS {
            self.refill();
        }
        let word = self.buf[self.cursor];
        self.cursor += 1;
        word
    }

    fn refill(&mut self) {
        #[cfg(target_arch = "x86_64")]
        {
            // `is_x86_feature_detected!` caches its probe; the check is
            // one relaxed load amortized over 64 output words.
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: `refill_avx2` only requires AVX2, which the
                // runtime check above just confirmed.
                unsafe { refill_avx2(&self.key, self.counter, &mut self.buf) };
                self.counter = self.counter.wrapping_add(BATCH_BLOCKS as u64);
                self.cursor = 0;
                return;
            }
        }
        let (lo, hi) = self.buf.split_at_mut(8 * LANES);
        refill_batch::<LANES>(&self.key, self.counter, lo);
        refill_batch::<LANES>(&self.key, self.counter.wrapping_add(LANES as u64), hi);
        self.counter = self.counter.wrapping_add(BATCH_BLOCKS as u64);
        self.cursor = 0;
    }
}

/// The whole eight-block batch in one call, compiled with AVX2 enabled:
/// each `[u32; 8]` row of the generic body becomes a single 256-bit
/// register (16 rows exactly fill the ymm register file).
///
/// # Safety
/// The caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// `unsafe` only encodes the target-feature contract stated above.
unsafe fn refill_avx2(key: &[u32; 8], counter: u64, buf: &mut [u64; BUF_WORDS]) {
    refill_batch::<BATCH_BLOCKS>(key, counter, buf);
}

/// Compute `L` consecutive ChaCha8 blocks starting at `counter` into
/// `buf` (`8 * L` u64 words), lane-parallel. `#[inline(always)]` so the
/// body inherits the target features of whichever wrapper calls it.
#[inline(always)]
fn refill_batch<const L: usize>(key: &[u32; 8], counter: u64, buf: &mut [u64]) {
    debug_assert_eq!(buf.len(), 8 * L);
    // Lane b of every [u32; L] holds block counter + b.
    let mut state = [[0u32; L]; 16];
    for (i, &c) in CHACHA_CONSTANTS.iter().enumerate() {
        state[i] = [c; L];
    }
    for (i, &k) in key.iter().enumerate() {
        state[4 + i] = [k; L];
    }
    for lane in 0..L {
        let ctr = counter.wrapping_add(lane as u64);
        state[12][lane] = ctr as u32;
        state[13][lane] = (ctr >> 32) as u32;
    }
    // state[14..16]: zero nonce — streams differ by key, not nonce.
    let mut working = state;
    for _ in 0..4 {
        // Column round.
        quarter(&mut working, 0, 4, 8, 12);
        quarter(&mut working, 1, 5, 9, 13);
        quarter(&mut working, 2, 6, 10, 14);
        quarter(&mut working, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut working, 0, 5, 10, 15);
        quarter(&mut working, 1, 6, 11, 12);
        quarter(&mut working, 2, 7, 8, 13);
        quarter(&mut working, 3, 4, 9, 14);
    }
    for (w, s) in working.iter_mut().zip(state.iter()) {
        for lane in 0..L {
            w[lane] = w[lane].wrapping_add(s[lane]);
        }
    }
    // Emit block by block so the stream equals sequential blocks.
    for lane in 0..L {
        for i in 0..8 {
            buf[8 * lane + i] =
                u64::from(working[2 * i][lane]) | (u64::from(working[2 * i + 1][lane]) << 32);
        }
    }
}

/// Lane-wise `x + y`.
#[inline(always)]
fn row_add<const L: usize>(x: [u32; L], y: [u32; L]) -> [u32; L] {
    let mut r = x;
    for lane in 0..L {
        r[lane] = r[lane].wrapping_add(y[lane]);
    }
    r
}

/// Lane-wise `(x ^ y) <<< n`.
#[inline(always)]
fn row_xor_rot<const L: usize>(x: [u32; L], y: [u32; L], n: u32) -> [u32; L] {
    let mut r = x;
    for lane in 0..L {
        r[lane] = (r[lane] ^ y[lane]).rotate_left(n);
    }
    r
}

/// One ChaCha quarter-round across all lanes. The four rows are copied
/// into locals first: with in-place `s[a][lane]` updates the compiler
/// must assume the runtime row indices alias and refuses to vectorize,
/// leaving the whole refill scalar.
#[inline(always)]
fn quarter<const L: usize>(s: &mut [[u32; L]; 16], a: usize, b: usize, c: usize, d: usize) {
    let (mut va, mut vb, mut vc, mut vd) = (s[a], s[b], s[c], s[d]);
    va = row_add(va, vb);
    vd = row_xor_rot(vd, va, 16);
    vc = row_add(vc, vd);
    vb = row_xor_rot(vb, vc, 12);
    va = row_add(va, vb);
    vd = row_xor_rot(vd, va, 8);
    vc = row_add(vc, vd);
    vb = row_xor_rot(vb, vc, 7);
    s[a] = va;
    s[b] = vb;
    s[c] = vc;
    s[d] = vd;
}

/// Mix a 64-bit value (SplitMix64 finalizer). Good avalanche, cheap.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derive an independent RNG stream for (`seed`, `tag`, `index`).
pub fn fork(seed: u64, tag: &str, index: u64) -> SynthRng {
    let mut h = seed;
    for b in tag.bytes() {
        h = mix64(h ^ u64::from(b));
    }
    h = mix64(h ^ index);
    SynthRng::seed_from_u64(h)
}

/// Stable 64-bit hash of a string mixed with a seed. Used to make
/// per-question decisions deterministic in downstream crates as well.
pub fn hash_str(seed: u64, s: &str) -> u64 {
    let mut h = mix64(seed ^ 0x51_7c_c1_b7_27_22_0a_95);
    for chunk in s.as_bytes().chunks(8) {
        let mut word = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            word |= u64::from(b) << (8 * i);
        }
        h = mix64(h ^ word);
    }
    h
}

/// Incremental [`hash_str`]: feeds byte slices one at a time and
/// produces exactly the value `hash_str` would return for their
/// concatenation, without materializing it.
///
/// This is the allocation-free path for hot callers that hash a key
/// assembled from several parts (the simulated LLM hashes a
/// `taxonomy|child|candidate|id` identity for every question): the
/// 8-byte chunking of [`hash_str`] is reproduced across part
/// boundaries by buffering a partial word between writes.
#[derive(Debug, Clone)]
pub struct StreamHasher {
    h: u64,
    word: u64,
    shift: u32,
}

impl StreamHasher {
    /// Start a stream equivalent to `hash_str(seed, ...)`.
    pub fn new(seed: u64) -> StreamHasher {
        StreamHasher { h: mix64(seed ^ 0x51_7c_c1_b7_27_22_0a_95), word: 0, shift: 0 }
    }

    /// Feed raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.word |= u64::from(b) << self.shift;
            self.shift += 8;
            if self.shift == 64 {
                self.h = mix64(self.h ^ self.word);
                self.word = 0;
                self.shift = 0;
            }
        }
    }

    /// Feed a string's bytes.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// Feed the decimal digits of `v`, exactly as `format!("{v}")`
    /// would produce them, without allocating.
    pub fn write_decimal(&mut self, mut v: u64) {
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        loop {
            i -= 1;
            buf[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        self.write(&buf[i..]);
    }

    /// Finish the stream, mixing any buffered partial word like
    /// [`hash_str`] mixes its final short chunk.
    pub fn finish(self) -> u64 {
        if self.shift > 0 {
            mix64(self.h ^ self.word)
        } else {
            self.h
        }
    }
}

/// The sampling surface generators program against. Implemented by
/// [`SynthRng`]; mirrors the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of a [`Standard`]-distributed type
    /// (`rng.gen::<u64>()`, `rng.gen::<f64>()` in `[0,1)`, …).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        f64_from_bits(self.next_u64()) < p
    }

    /// Uniform index in `[0, n)`; `n` must be nonzero.
    #[inline]
    fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "gen_index on empty range");
        // Lemire multiply-shift; bias is n/2^64, immaterial here.
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }
}

impl Rng for SynthRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SynthRng::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform f64 in `[0, 1)` from the top 53 bits of a word.
#[inline]
fn f64_from_bits(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their "standard" domain (the full
/// integer range; `[0,1)` for floats).
pub trait Standard {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Half-open ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draw uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty range");
        self.start + f64_from_bits(rng.next_u64()) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64);

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_index(self.end - self.start)
    }
}

/// Random slice operations (`choose`, `shuffle`), mirroring the
/// `rand::seq::SliceRandom` subset the workspace uses.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Uniform (Fisher–Yates) in-place shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    #[inline]
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_index(self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_index(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_is_deterministic() {
        let mut a = fork(42, "names", 3);
        let mut b = fork(42, "names", 3);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut a = fork(42, "names", 3);
        let mut b = fork(42, "names", 4);
        let mut c = fork(42, "shape", 3);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_ne!(x, y);
        assert_ne!(x, z);
        assert_ne!(y, z);
    }

    #[test]
    fn hash_str_is_stable_and_sensitive() {
        assert_eq!(hash_str(1, "abc"), hash_str(1, "abc"));
        assert_ne!(hash_str(1, "abc"), hash_str(2, "abc"));
        assert_ne!(hash_str(1, "abc"), hash_str(1, "abd"));
        assert_ne!(hash_str(1, ""), hash_str(1, "a"));
    }

    /// The streaming hasher must equal `hash_str` over the concatenation
    /// regardless of how the input is split across writes — including
    /// splits that straddle the 8-byte chunk boundary.
    #[test]
    fn stream_hasher_matches_hash_str() {
        let samples = [
            "",
            "a",
            "abcdefg",
            "abcdefgh",
            "abcdefghi",
            "eBay|Wireless Speakers|Audio|4294967297",
            "exactly sixteen.",
            "ünïcødé names työ",
        ];
        for s in samples {
            for seed in [0u64, 1, 0xDEAD_BEEF] {
                for split in 0..=s.len() {
                    if !s.is_char_boundary(split) {
                        continue;
                    }
                    let mut h = StreamHasher::new(seed);
                    h.write_str(&s[..split]);
                    h.write_str(&s[split..]);
                    assert_eq!(h.finish(), hash_str(seed, s), "{s:?} split at {split}");
                }
            }
        }
    }

    #[test]
    fn stream_hasher_decimal_matches_formatted_digits() {
        for v in [0u64, 1, 9, 10, 12345, u64::MAX] {
            let mut a = StreamHasher::new(7);
            a.write_decimal(v);
            assert_eq!(a.finish(), hash_str(7, &format!("{v}")), "v = {v}");
        }
    }

    #[test]
    fn mix64_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = mix64(0x1234_5678);
        let flipped = mix64(0x1234_5679);
        let diff = (base ^ flipped).count_ones();
        assert!((16..=48).contains(&diff), "poor avalanche: {diff} bits");
    }

    #[test]
    fn chacha8_matches_reference_vector() {
        // ChaCha8 block 0 with an all-zero key and nonce; first 64 bytes
        // of keystream as little-endian u64 words. Pins the stream so an
        // accidental edit to the core cannot slip through unnoticed.
        let mut rng =
            SynthRng { key: [0; 8], counter: 0, buf: [0; BUF_WORDS], cursor: BUF_WORDS };
        let expected: [u64; 8] = [
            0xd640_5f89_2fef_003e,
            0xa1a5_091f_e8b8_5b7f,
            0x3b7f_9ace_c30e_842c,
            0x1e1a_71ef_88e1_1b18,
            0x416f_21b9_72e1_4c98,
            0x1956_6d45_6753_449f,
            0x01b0_86da_a342_4a31,
            0x42fe_0c0e_b8fd_7b38,
        ];
        for word in expected {
            assert_eq!(rng.next_u64(), word);
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = fork(7, "unit", 0);
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = fork(9, "range", 0);
        for _ in 0..10_000 {
            let x = rng.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&x), "{x}");
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n), "{n}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = fork(11, "bool", 0);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle_are_uniform_enough() {
        let mut rng = fork(13, "slice", 0);
        let pool = [0usize, 1, 2, 3, 4];
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[*pool.choose(&mut rng).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
        // Shuffle is a permutation and moves things around.
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
        assert!(<[usize]>::choose(&[], &mut rng).is_none());
    }

    #[test]
    fn empty_shuffle_and_singleton_choose() {
        let mut rng = fork(17, "edge", 0);
        let mut empty: Vec<u8> = vec![];
        empty.shuffle(&mut rng);
        assert_eq!(["only"].choose(&mut rng), Some(&"only"));
    }
}
