//! Deterministic, forkable randomness.
//!
//! Every generator in this crate derives its random stream from a
//! `(master seed, purpose tag, index)` triple via [`fork`], so adding a
//! new consumer never perturbs the output of existing ones, and the same
//! options always produce byte-identical taxonomies.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG used throughout the synth crate. ChaCha8 is seedable, portable
/// across platforms and rand versions, and fast enough to name two
/// million species in well under a second.
pub type SynthRng = ChaCha8Rng;

/// Mix a 64-bit value (SplitMix64 finalizer). Good avalanche, cheap.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derive an independent RNG stream for (`seed`, `tag`, `index`).
pub fn fork(seed: u64, tag: &str, index: u64) -> SynthRng {
    let mut h = seed;
    for b in tag.bytes() {
        h = mix64(h ^ u64::from(b));
    }
    h = mix64(h ^ index);
    SynthRng::seed_from_u64(h)
}

/// Stable 64-bit hash of a string mixed with a seed. Used to make
/// per-question decisions deterministic in downstream crates as well.
pub fn hash_str(seed: u64, s: &str) -> u64 {
    let mut h = mix64(seed ^ 0x51_7c_c1_b7_27_22_0a_95);
    for chunk in s.as_bytes().chunks(8) {
        let mut word = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            word |= u64::from(b) << (8 * i);
        }
        h = mix64(h ^ word);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fork_is_deterministic() {
        let mut a = fork(42, "names", 3);
        let mut b = fork(42, "names", 3);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut a = fork(42, "names", 3);
        let mut b = fork(42, "names", 4);
        let mut c = fork(42, "shape", 3);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_ne!(x, y);
        assert_ne!(x, z);
        assert_ne!(y, z);
    }

    #[test]
    fn hash_str_is_stable_and_sensitive() {
        assert_eq!(hash_str(1, "abc"), hash_str(1, "abc"));
        assert_ne!(hash_str(1, "abc"), hash_str(2, "abc"));
        assert_ne!(hash_str(1, "abc"), hash_str(1, "abd"));
        assert_ne!(hash_str(1, ""), hash_str(1, "a"));
    }

    #[test]
    fn mix64_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = mix64(0x1234_5678);
        let flipped = mix64(0x1234_5679);
        let diff = (base ^ flipped).count_ones();
        assert!((16..=48).contains(&diff), "poor avalanche: {diff} bits");
    }
}
