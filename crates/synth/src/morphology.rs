//! Name morphology: pseudo-word synthesis and casing helpers.
//!
//! Each domain generator composes names from these primitives so that the
//! *surface form* properties the paper leans on hold in the synthetic
//! data — most importantly that an NCBI species name embeds its genus
//! name (`Verbascum chaixii` under `Verbascum`) and that OAE children
//! share long substrings with their parents (`... AE`).
//!
//! The syllable pools are stored twice: as `&str` slices (the readable
//! source of truth, used by tests) and as packed [`Frag`] tables whose
//! appends compile to one unconditional 4-byte copy — this is the
//! hottest loop in taxonomy generation, running once per syllable of
//! every generated node name.

use crate::rng::Rng;
use crate::rng::SynthRng;

/// Phonotactic style for pseudo-word generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordStyle {
    /// Latinate scientific names (`-us`, `-um`, `-ia` endings).
    Latin,
    /// Language/ethnonym flavored (`-ic`, `-ese`, `-ish` endings).
    Linguistic,
    /// Plain English-looking filler words.
    Plain,
}

/// A syllable fragment padded to four bytes so appending is a fixed-size
/// copy plus a length adjustment instead of a variable-length `memcpy`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frag {
    bytes: [u8; 4],
    len: u8,
}

impl Frag {
    /// Pack a fragment (at most 4 bytes) at compile time.
    const fn new(s: &str) -> Frag {
        let src = s.as_bytes();
        assert!(src.len() <= 4, "fragments are at most 4 bytes");
        let mut bytes = [0u8; 4];
        let mut i = 0;
        while i < src.len() {
            bytes[i] = src[i];
            i += 1;
        }
        Frag { bytes, len: src.len() as u8 }
    }

    /// Like [`Frag::new`] with the first byte ASCII-uppercased.
    const fn new_cap(s: &str) -> Frag {
        let mut f = Frag::new(s);
        f.bytes[0] = f.bytes[0].to_ascii_uppercase();
        f
    }
}

/// Append one packed fragment: an unconditional 4-byte copy, then trim.
#[inline(always)]
pub(crate) fn push_frag(out: &mut Vec<u8>, f: Frag) {
    out.extend_from_slice(&f.bytes);
    out.truncate(out.len() - (4 - f.len as usize));
}

/// Define a syllable pool as both a `&str` slice and a packed [`Frag`]
/// table; the three-table form adds a first-byte-capitalized variant
/// (only onsets need one — a word's first char is its first onset char).
macro_rules! frag_pool {
    ($name:ident, $packed:ident, $capped:ident, [$($s:literal),* $(,)?]) => {
        frag_pool!($name, $packed, [$($s),*]);
        const $capped: &[Frag] = &[$(Frag::new_cap($s)),*];
    };
    ($name:ident, $packed:ident, [$($s:literal),* $(,)?]) => {
        // The `&str` mirror is the readable source of truth, consumed
        // only by tests; generation reads the packed table.
        #[allow(dead_code)]
        pub(crate) const $name: &[&str] = &[$($s),*];
        const $packed: &[Frag] = &[$(Frag::new($s)),*];
    };
}

frag_pool!(ONSETS, ONSETS_P, ONSETS_C, [
    "b", "c", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "cl",
    "cr", "dr", "fl", "gr", "pl", "pr", "sc", "sp", "st", "str", "th", "tr", "ch", "ph", "qu",
]);
frag_pool!(NUCLEI, NUCLEI_P, [
    "a", "e", "i", "o", "u", "ae", "ia", "io", "ea", "ou", "ei",
]);
frag_pool!(CODAS, CODAS_P, [
    "", "", "", "n", "r", "s", "l", "m", "x", "t", "nd", "rn", "st", "ns",
]);
frag_pool!(LATIN_ENDINGS, LATIN_P, [
    "us", "um", "a", "is", "ia", "ens", "ii", "ata", "osa", "alis",
]);
frag_pool!(LINGUISTIC_ENDINGS, LINGUISTIC_P, [
    "ic", "an", "ese", "ish", "i", "ian", "ti", "ua", "o", "ai",
]);

/// Generate one pseudo-word of `syllables` syllables in the given style.
pub fn pseudo_word(rng: &mut SynthRng, style: WordStyle, syllables: usize) -> String {
    let mut w = Vec::with_capacity(syllables * 3 + 3);
    pseudo_word_into(rng, style, syllables, &mut w);
    String::from_utf8(w).expect("syllable fragments are valid UTF-8")
}

/// Append one pseudo-word to `out` — same RNG draws and bytes as
/// [`pseudo_word`], without the per-word `String`. This is the
/// generator's hot-path variant.
#[inline]
pub fn pseudo_word_into(rng: &mut SynthRng, style: WordStyle, syllables: usize, out: &mut Vec<u8>) {
    word_into(rng, style, syllables, out, false)
}

/// [`pseudo_word_into`] with the word's first byte ASCII-uppercased —
/// byte-for-byte `capitalize(pseudo_word(..))` with the same draws, but
/// with no intermediate buffer (the capital comes straight from the
/// pre-capitalized onset table).
#[inline]
pub fn pseudo_word_cap_into(
    rng: &mut SynthRng,
    style: WordStyle,
    syllables: usize,
    out: &mut Vec<u8>,
) {
    word_into(rng, style, syllables, out, true)
}

#[inline]
fn word_into(
    rng: &mut SynthRng,
    style: WordStyle,
    syllables: usize,
    out: &mut Vec<u8>,
    capitalize_first: bool,
) {
    for i in 0..syllables.max(1) {
        let onsets = if i == 0 && capitalize_first { ONSETS_C } else { ONSETS_P };
        push_frag(out, onsets[rng.gen_index(onsets.len())]);
        push_frag(out, NUCLEI_P[rng.gen_index(NUCLEI_P.len())]);
        // Interior codas make clusters too heavy; only allow at the end.
        if i + 1 == syllables {
            let pool = match style {
                WordStyle::Latin => LATIN_P,
                WordStyle::Linguistic => LINGUISTIC_P,
                WordStyle::Plain => CODAS_P,
            };
            push_frag(out, pool[rng.gen_index(pool.len())]);
        }
    }
}

/// Capitalize the first ASCII letter.
pub fn capitalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    capitalize_into(s, &mut out);
    out
}

/// Append `s` with its first ASCII letter capitalized — same bytes as
/// [`capitalize`], without the intermediate `String`.
pub fn capitalize_into(s: &str, out: &mut String) {
    let mut chars = s.chars();
    if let Some(c) = chars.next() {
        out.push(c.to_ascii_uppercase());
        out.push_str(chars.as_str());
    }
}

/// Byte-buffer variant of [`capitalize_into`]: append `s` with its first
/// byte ASCII-uppercased. Identical bytes for any UTF-8 input, because
/// `char::to_ascii_uppercase` only changes ASCII leaders and non-ASCII
/// leading bytes are `>= 0x80`, which `u8::to_ascii_uppercase` leaves
/// untouched.
#[inline]
pub(crate) fn push_cap(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    if let Some((&first, rest)) = b.split_first() {
        out.push(first.to_ascii_uppercase());
        out.extend_from_slice(rest);
    }
}

/// Join words CamelCase (`payment`, `complete` → `PaymentComplete`).
pub fn camel_case(words: &[&str]) -> String {
    words.iter().map(|w| capitalize(w)).collect()
}

/// Title-case every word of a space-separated phrase.
pub fn title_case(phrase: &str) -> String {
    phrase
        .split(' ')
        .map(capitalize)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Shared English-ish vocabulary pools used by several domains.
pub mod pools {
    /// Product-category head nouns.
    pub const PRODUCT_HEADS: &[&str] = &[
        "Accessories", "Appliances", "Audio", "Bags", "Batteries", "Beds", "Bikes", "Books",
        "Cables", "Cameras", "Chairs", "Cleaners", "Clocks", "Coolers", "Cookware", "Decor",
        "Desks", "Displays", "Dolls", "Drives", "Filters", "Fixtures", "Footwear", "Furniture",
        "Games", "Gloves", "Grills", "Guitars", "Hats", "Heaters", "Helmets", "Instruments",
        "Jackets", "Jewelry", "Keyboards", "Kits", "Lamps", "Lenses", "Lighting", "Locks",
        "Mats", "Mixers", "Monitors", "Mounts", "Ovens", "Pads", "Pans", "Parts", "Pens",
        "Phones", "Pillows", "Players", "Printers", "Pumps", "Racks", "Routers", "Rugs",
        "Scanners", "Screens", "Sensors", "Shelves", "Speakers", "Stands", "Supplies", "Tables",
        "Tablets", "Tents", "Toners", "Tools", "Toys", "Trimmers", "Watches", "Wipes",
    ];

    /// Product-category modifiers.
    pub const PRODUCT_MODS: &[&str] = &[
        "Acoustic", "Adjustable", "Antique", "Automotive", "Baby", "Bamboo", "Bluetooth",
        "Ceramic", "Classic", "Commercial", "Compact", "Cordless", "Cotton", "Digital",
        "Electric", "Ergonomic", "Folding", "Gaming", "Garden", "Glass", "Handheld", "Heavy-Duty",
        "Home", "Indoor", "Industrial", "Kids", "Kitchen", "Leather", "Marine", "Mechanical",
        "Medical", "Metal", "Mini", "Modern", "Office", "Outdoor", "Pet", "Portable",
        "Professional", "Rechargeable", "Rustic", "Smart", "Solar", "Sports", "Stainless",
        "Travel", "Vintage", "Waterproof", "Wireless", "Wooden",
    ];

    /// Computer-science research areas (ACM-CCS-like stems).
    pub const CS_AREAS: &[&str] = &[
        "algorithms", "architectures", "benchmarking", "clustering", "compilers", "concurrency",
        "cryptography", "databases", "debugging", "embeddings", "fairness", "indexing",
        "inference", "kernels", "languages", "learning", "memory management", "middleware",
        "networks", "optimization", "parsing", "pipelines", "privacy", "provenance",
        "query processing", "ranking", "reasoning", "recovery", "replication", "retrieval",
        "scheduling", "security", "semantics", "storage", "streaming", "synthesis", "testing",
        "transactions", "verification", "virtualization", "visualization", "workflows",
    ];

    /// CS area qualifiers.
    pub const CS_QUALIFIERS: &[&str] = &[
        "adaptive", "approximate", "concurrent", "data-driven", "declarative", "distributed",
        "dynamic", "empirical", "federated", "formal", "graph-based", "hardware-aware",
        "incremental", "interactive", "large-scale", "neural", "online", "parallel",
        "probabilistic", "quantum", "real-time", "relational", "robust", "scalable", "secure",
        "self-tuning", "semantic", "spatial", "statistical", "streaming", "symbolic", "temporal",
    ];

    /// Geographic feature terms (GeoNames-like).
    pub const GEO_FEATURES: &[&str] = &[
        "archipelago", "basin", "bay", "canal", "canyon", "cape", "cliff", "coast", "crater",
        "delta", "desert", "dune", "escarpment", "estuary", "fjord", "forest", "glacier", "gorge",
        "gulf", "harbor", "headland", "highland", "hill", "island", "isthmus", "lagoon", "lake",
        "marsh", "mesa", "moor", "mountain", "oasis", "pass", "peninsula", "plain", "plateau",
        "reef", "ridge", "river", "savanna", "sea", "shoal", "sound", "spring", "steppe",
        "strait", "swamp", "tundra", "valley", "volcano", "waterfall", "wetland",
    ];

    /// Administrative/settlement terms (GeoNames class A/P-like).
    pub const GEO_ADMIN: &[&str] = &[
        "borough", "canton", "capital", "city", "commune", "county", "department", "district",
        "division", "hamlet", "municipality", "parish", "prefecture", "province", "region",
        "republic", "settlement", "state", "territory", "town", "township", "village", "ward",
        "zone",
    ];

    /// Disease/condition stems (ICD-like).
    pub const DISEASE_STEMS: &[&str] = &[
        "arthritis", "carcinoma", "colitis", "dermatitis", "dystrophy", "embolism", "fibrosis",
        "gastritis", "hepatitis", "hypertension", "infection", "insufficiency", "lesion",
        "myopathy", "necrosis", "nephritis", "neuropathy", "obstruction", "occlusion", "edema",
        "pneumonia", "sclerosis", "sepsis", "stenosis", "syndrome", "thrombosis", "ulcer",
        "anemia", "fracture", "degeneration", "malformation", "deficiency", "dysplasia",
        "inflammation", "rupture", "atrophy",
    ];

    /// Anatomical sites (ICD/OAE).
    pub const BODY_SITES: &[&str] = &[
        "abdominal", "adrenal", "arterial", "biliary", "bronchial", "cardiac", "cerebral",
        "cervical", "colonic", "corneal", "cranial", "cutaneous", "dental", "duodenal",
        "esophageal", "femoral", "gastric", "hepatic", "intestinal", "laryngeal", "lumbar",
        "mandibular", "nasal", "ocular", "optic", "pancreatic", "pelvic", "pericardial",
        "peripheral", "pleural", "pulmonary", "renal", "retinal", "spinal", "splenic",
        "thoracic", "thyroid", "tracheal", "urinary", "vascular", "venous", "vertebral",
    ];

    /// Adverse-event qualifiers (OAE).
    pub const AE_QUALIFIERS: &[&str] = &[
        "acute", "chronic", "delayed", "diffuse", "early-onset", "focal", "generalized",
        "intermittent", "late-onset", "localized", "mild", "moderate", "persistent",
        "progressive", "recurrent", "refractory", "severe", "subacute", "transient",
    ];

    /// Schema.org-like type stems.
    pub const SCHEMA_STEMS: &[&str] = &[
        "action", "article", "audience", "booking", "broadcast", "business", "catalog", "claim",
        "collection", "comment", "contact", "course", "dataset", "delivery", "device",
        "donation", "episode", "event", "facility", "gallery", "grant", "invoice", "listing",
        "membership", "menu", "message", "offer", "order", "organization", "payment", "permit",
        "person", "place", "playlist", "policy", "product", "program", "project", "rating",
        "report", "reservation", "review", "route", "schedule", "season", "series", "service",
        "statement", "station", "store", "ticket", "trip", "vehicle", "venue", "work",
    ];

    /// Schema.org-like modifiers.
    pub const SCHEMA_MODS: &[&str] = &[
        "aggregate", "archived", "broadcast", "cancelled", "completed", "creative", "digital",
        "educational", "exclusive", "featured", "financial", "government", "health", "legal",
        "local", "media", "medical", "mobile", "official", "online", "partial", "pending",
        "public", "recurring", "registered", "restricted", "scheduled", "social", "sponsored",
        "verified", "virtual",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fork;

    #[test]
    fn pseudo_word_is_deterministic() {
        let mut a = fork(7, "w", 0);
        let mut b = fork(7, "w", 0);
        assert_eq!(
            pseudo_word(&mut a, WordStyle::Latin, 2),
            pseudo_word(&mut b, WordStyle::Latin, 2)
        );
    }

    #[test]
    fn styles_produce_expected_endings() {
        let mut rng = fork(1, "w", 0);
        for _ in 0..50 {
            let w = pseudo_word(&mut rng, WordStyle::Latin, 2);
            assert!(
                LATIN_ENDINGS.iter().any(|e| w.ends_with(e)),
                "latin word {w:?} lacks latin ending"
            );
            let l = pseudo_word(&mut rng, WordStyle::Linguistic, 2);
            assert!(
                LINGUISTIC_ENDINGS.iter().any(|e| l.ends_with(e)),
                "linguistic word {l:?} lacks ending"
            );
        }
    }

    #[test]
    fn capitalized_variant_matches_capitalize_of_plain() {
        for (seed, style) in
            [(9u64, WordStyle::Latin), (10, WordStyle::Linguistic), (11, WordStyle::Plain)]
        {
            let mut a = fork(seed, "w", 2);
            let mut b = fork(seed, "w", 2);
            for syll in 1..4 {
                let plain = pseudo_word(&mut a, style, syll);
                let mut cap = Vec::new();
                pseudo_word_cap_into(&mut b, style, syll, &mut cap);
                assert_eq!(String::from_utf8(cap).unwrap(), capitalize(&plain));
            }
        }
    }

    #[test]
    fn words_are_nonempty_and_lowercase() {
        let mut rng = fork(3, "w", 1);
        for s in 1..4 {
            let w = pseudo_word(&mut rng, WordStyle::Plain, s);
            assert!(!w.is_empty());
            assert!(w.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn casing_helpers() {
        assert_eq!(capitalize("abc"), "Abc");
        assert_eq!(capitalize(""), "");
        assert_eq!(camel_case(&["payment", "complete"]), "PaymentComplete");
        assert_eq!(title_case("hello wide world"), "Hello Wide World");
    }

    #[test]
    fn push_cap_matches_capitalize_into() {
        for s in ["abc", "", "x", "été", "a-b c"] {
            let mut a = String::new();
            capitalize_into(s, &mut a);
            let mut b = Vec::new();
            push_cap(&mut b, s);
            assert_eq!(String::from_utf8(b).unwrap(), a);
        }
    }

    #[test]
    fn pools_are_deduplicated() {
        for pool in [
            pools::PRODUCT_HEADS,
            pools::PRODUCT_MODS,
            pools::CS_AREAS,
            pools::GEO_FEATURES,
            pools::DISEASE_STEMS,
            pools::BODY_SITES,
            pools::SCHEMA_STEMS,
        ] {
            let mut v = pool.to_vec();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), pool.len(), "pool contains duplicates");
        }
    }
}
