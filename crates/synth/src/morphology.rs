//! Name morphology: pseudo-word synthesis and casing helpers.
//!
//! Each domain generator composes names from these primitives so that the
//! *surface form* properties the paper leans on hold in the synthetic
//! data — most importantly that an NCBI species name embeds its genus
//! name (`Verbascum chaixii` under `Verbascum`) and that OAE children
//! share long substrings with their parents (`... AE`).

use crate::rng::SynthRng;
use crate::rng::SliceRandom;

/// Phonotactic style for pseudo-word generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordStyle {
    /// Latinate scientific names (`-us`, `-um`, `-ia` endings).
    Latin,
    /// Language/ethnonym flavored (`-ic`, `-ese`, `-ish` endings).
    Linguistic,
    /// Plain English-looking filler words.
    Plain,
}

const ONSETS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "cl",
    "cr", "dr", "fl", "gr", "pl", "pr", "sc", "sp", "st", "str", "th", "tr", "ch", "ph", "qu",
];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ae", "ia", "io", "ea", "ou", "ei"];
const CODAS: &[&str] = &["", "", "", "n", "r", "s", "l", "m", "x", "t", "nd", "rn", "st", "ns"];

const LATIN_ENDINGS: &[&str] = &["us", "um", "a", "is", "ia", "ens", "ii", "ata", "osa", "alis"];
const LINGUISTIC_ENDINGS: &[&str] = &["ic", "an", "ese", "ish", "i", "ian", "ti", "ua", "o", "ai"];

/// Generate one pseudo-word of `syllables` syllables in the given style.
pub fn pseudo_word(rng: &mut SynthRng, style: WordStyle, syllables: usize) -> String {
    let mut w = String::with_capacity(syllables * 3 + 3);
    for i in 0..syllables.max(1) {
        w.push_str(ONSETS.choose(rng).expect("nonempty pool"));
        w.push_str(NUCLEI.choose(rng).expect("nonempty pool"));
        // Interior codas make clusters too heavy; only allow at the end.
        if i + 1 == syllables {
            match style {
                WordStyle::Latin => w.push_str(LATIN_ENDINGS.choose(rng).expect("nonempty pool")),
                WordStyle::Linguistic => {
                    w.push_str(LINGUISTIC_ENDINGS.choose(rng).expect("nonempty pool"))
                }
                WordStyle::Plain => w.push_str(CODAS.choose(rng).expect("nonempty pool")),
            }
        }
    }
    w
}

/// Capitalize the first ASCII letter.
pub fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_ascii_uppercase().to_string() + chars.as_str(),
        None => String::new(),
    }
}

/// Join words CamelCase (`payment`, `complete` → `PaymentComplete`).
pub fn camel_case(words: &[&str]) -> String {
    words.iter().map(|w| capitalize(w)).collect()
}

/// Title-case every word of a space-separated phrase.
pub fn title_case(phrase: &str) -> String {
    phrase
        .split(' ')
        .map(capitalize)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Shared English-ish vocabulary pools used by several domains.
pub mod pools {
    /// Product-category head nouns.
    pub const PRODUCT_HEADS: &[&str] = &[
        "Accessories", "Appliances", "Audio", "Bags", "Batteries", "Beds", "Bikes", "Books",
        "Cables", "Cameras", "Chairs", "Cleaners", "Clocks", "Coolers", "Cookware", "Decor",
        "Desks", "Displays", "Dolls", "Drives", "Filters", "Fixtures", "Footwear", "Furniture",
        "Games", "Gloves", "Grills", "Guitars", "Hats", "Heaters", "Helmets", "Instruments",
        "Jackets", "Jewelry", "Keyboards", "Kits", "Lamps", "Lenses", "Lighting", "Locks",
        "Mats", "Mixers", "Monitors", "Mounts", "Ovens", "Pads", "Pans", "Parts", "Pens",
        "Phones", "Pillows", "Players", "Printers", "Pumps", "Racks", "Routers", "Rugs",
        "Scanners", "Screens", "Sensors", "Shelves", "Speakers", "Stands", "Supplies", "Tables",
        "Tablets", "Tents", "Toners", "Tools", "Toys", "Trimmers", "Watches", "Wipes",
    ];

    /// Product-category modifiers.
    pub const PRODUCT_MODS: &[&str] = &[
        "Acoustic", "Adjustable", "Antique", "Automotive", "Baby", "Bamboo", "Bluetooth",
        "Ceramic", "Classic", "Commercial", "Compact", "Cordless", "Cotton", "Digital",
        "Electric", "Ergonomic", "Folding", "Gaming", "Garden", "Glass", "Handheld", "Heavy-Duty",
        "Home", "Indoor", "Industrial", "Kids", "Kitchen", "Leather", "Marine", "Mechanical",
        "Medical", "Metal", "Mini", "Modern", "Office", "Outdoor", "Pet", "Portable",
        "Professional", "Rechargeable", "Rustic", "Smart", "Solar", "Sports", "Stainless",
        "Travel", "Vintage", "Waterproof", "Wireless", "Wooden",
    ];

    /// Computer-science research areas (ACM-CCS-like stems).
    pub const CS_AREAS: &[&str] = &[
        "algorithms", "architectures", "benchmarking", "clustering", "compilers", "concurrency",
        "cryptography", "databases", "debugging", "embeddings", "fairness", "indexing",
        "inference", "kernels", "languages", "learning", "memory management", "middleware",
        "networks", "optimization", "parsing", "pipelines", "privacy", "provenance",
        "query processing", "ranking", "reasoning", "recovery", "replication", "retrieval",
        "scheduling", "security", "semantics", "storage", "streaming", "synthesis", "testing",
        "transactions", "verification", "virtualization", "visualization", "workflows",
    ];

    /// CS area qualifiers.
    pub const CS_QUALIFIERS: &[&str] = &[
        "adaptive", "approximate", "concurrent", "data-driven", "declarative", "distributed",
        "dynamic", "empirical", "federated", "formal", "graph-based", "hardware-aware",
        "incremental", "interactive", "large-scale", "neural", "online", "parallel",
        "probabilistic", "quantum", "real-time", "relational", "robust", "scalable", "secure",
        "self-tuning", "semantic", "spatial", "statistical", "streaming", "symbolic", "temporal",
    ];

    /// Geographic feature terms (GeoNames-like).
    pub const GEO_FEATURES: &[&str] = &[
        "archipelago", "basin", "bay", "canal", "canyon", "cape", "cliff", "coast", "crater",
        "delta", "desert", "dune", "escarpment", "estuary", "fjord", "forest", "glacier", "gorge",
        "gulf", "harbor", "headland", "highland", "hill", "island", "isthmus", "lagoon", "lake",
        "marsh", "mesa", "moor", "mountain", "oasis", "pass", "peninsula", "plain", "plateau",
        "reef", "ridge", "river", "savanna", "sea", "shoal", "sound", "spring", "steppe",
        "strait", "swamp", "tundra", "valley", "volcano", "waterfall", "wetland",
    ];

    /// Administrative/settlement terms (GeoNames class A/P-like).
    pub const GEO_ADMIN: &[&str] = &[
        "borough", "canton", "capital", "city", "commune", "county", "department", "district",
        "division", "hamlet", "municipality", "parish", "prefecture", "province", "region",
        "republic", "settlement", "state", "territory", "town", "township", "village", "ward",
        "zone",
    ];

    /// Disease/condition stems (ICD-like).
    pub const DISEASE_STEMS: &[&str] = &[
        "arthritis", "carcinoma", "colitis", "dermatitis", "dystrophy", "embolism", "fibrosis",
        "gastritis", "hepatitis", "hypertension", "infection", "insufficiency", "lesion",
        "myopathy", "necrosis", "nephritis", "neuropathy", "obstruction", "occlusion", "edema",
        "pneumonia", "sclerosis", "sepsis", "stenosis", "syndrome", "thrombosis", "ulcer",
        "anemia", "fracture", "degeneration", "malformation", "deficiency", "dysplasia",
        "inflammation", "rupture", "atrophy",
    ];

    /// Anatomical sites (ICD/OAE).
    pub const BODY_SITES: &[&str] = &[
        "abdominal", "adrenal", "arterial", "biliary", "bronchial", "cardiac", "cerebral",
        "cervical", "colonic", "corneal", "cranial", "cutaneous", "dental", "duodenal",
        "esophageal", "femoral", "gastric", "hepatic", "intestinal", "laryngeal", "lumbar",
        "mandibular", "nasal", "ocular", "optic", "pancreatic", "pelvic", "pericardial",
        "peripheral", "pleural", "pulmonary", "renal", "retinal", "spinal", "splenic",
        "thoracic", "thyroid", "tracheal", "urinary", "vascular", "venous", "vertebral",
    ];

    /// Adverse-event qualifiers (OAE).
    pub const AE_QUALIFIERS: &[&str] = &[
        "acute", "chronic", "delayed", "diffuse", "early-onset", "focal", "generalized",
        "intermittent", "late-onset", "localized", "mild", "moderate", "persistent",
        "progressive", "recurrent", "refractory", "severe", "subacute", "transient",
    ];

    /// Schema.org-like type stems.
    pub const SCHEMA_STEMS: &[&str] = &[
        "action", "article", "audience", "booking", "broadcast", "business", "catalog", "claim",
        "collection", "comment", "contact", "course", "dataset", "delivery", "device",
        "donation", "episode", "event", "facility", "gallery", "grant", "invoice", "listing",
        "membership", "menu", "message", "offer", "order", "organization", "payment", "permit",
        "person", "place", "playlist", "policy", "product", "program", "project", "rating",
        "report", "reservation", "review", "route", "schedule", "season", "series", "service",
        "statement", "station", "store", "ticket", "trip", "vehicle", "venue", "work",
    ];

    /// Schema.org-like modifiers.
    pub const SCHEMA_MODS: &[&str] = &[
        "aggregate", "archived", "broadcast", "cancelled", "completed", "creative", "digital",
        "educational", "exclusive", "featured", "financial", "government", "health", "legal",
        "local", "media", "medical", "mobile", "official", "online", "partial", "pending",
        "public", "recurring", "registered", "restricted", "scheduled", "social", "sponsored",
        "verified", "virtual",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fork;

    #[test]
    fn pseudo_word_is_deterministic() {
        let mut a = fork(7, "w", 0);
        let mut b = fork(7, "w", 0);
        assert_eq!(
            pseudo_word(&mut a, WordStyle::Latin, 2),
            pseudo_word(&mut b, WordStyle::Latin, 2)
        );
    }

    #[test]
    fn styles_produce_expected_endings() {
        let mut rng = fork(1, "w", 0);
        for _ in 0..50 {
            let w = pseudo_word(&mut rng, WordStyle::Latin, 2);
            assert!(
                LATIN_ENDINGS.iter().any(|e| w.ends_with(e)),
                "latin word {w:?} lacks latin ending"
            );
            let l = pseudo_word(&mut rng, WordStyle::Linguistic, 2);
            assert!(
                LINGUISTIC_ENDINGS.iter().any(|e| l.ends_with(e)),
                "linguistic word {l:?} lacks ending"
            );
        }
    }

    #[test]
    fn words_are_nonempty_and_lowercase() {
        let mut rng = fork(3, "w", 1);
        for s in 1..4 {
            let w = pseudo_word(&mut rng, WordStyle::Plain, s);
            assert!(!w.is_empty());
            assert!(w.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn casing_helpers() {
        assert_eq!(capitalize("abc"), "Abc");
        assert_eq!(capitalize(""), "");
        assert_eq!(camel_case(&["payment", "complete"]), "PaymentComplete");
        assert_eq!(title_case("hello wide world"), "Hello Wide World");
    }

    #[test]
    fn pools_are_deduplicated() {
        for pool in [
            pools::PRODUCT_HEADS,
            pools::PRODUCT_MODS,
            pools::CS_AREAS,
            pools::GEO_FEATURES,
            pools::DISEASE_STEMS,
            pools::BODY_SITES,
            pools::SCHEMA_STEMS,
        ] {
            let mut v = pool.to_vec();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), pool.len(), "pool contains duplicates");
        }
    }
}
