//! # taxoglimpse-synth
//!
//! Synthetic data substrate for the TaxoGlimpse reproduction.
//!
//! The paper evaluates on ten real, crawled taxonomies (Google, Amazon and
//! eBay product categories, Schema.org, ACM-CCS, GeoNames, Glottolog,
//! ICD-10-CM, OAE, NCBI). Those cannot be fetched in this offline build,
//! so this crate generates deterministic synthetic stand-ins that
//! reproduce every structural property the benchmark's analysis relies
//! on:
//!
//! * the exact per-level node counts, level counts and tree counts of the
//!   paper's Table 1 ([`profiles`]),
//! * each domain's name *morphology* — Latin binomials whose species name
//!   embeds the genus name (NCBI), `"<X> AE"` suffix overlap between
//!   parent and child (OAE), ICD chapter codes, CamelCase Schema types,
//!   compound product noun phrases, language-family suffixes
//!   ([`morphology`], [`names`]),
//! * instances under leaf concepts for the instance-typing study
//!   ([`instances`]),
//! * the popularity ordering of Figure 2 ([`popularity`]).
//!
//! Everything is seeded: the same `(kind, GenOptions)` always produces an
//! identical taxonomy, byte for byte.
//!
//! ```
//! use taxoglimpse_synth::{generate, GenOptions, TaxonomyKind};
//!
//! let tax = generate(TaxonomyKind::Ebay, GenOptions::default()).unwrap();
//! // eBay's Table-1 shape is 13-110-472 over 13 trees.
//! assert_eq!(tax.roots().len(), 13);
//! assert_eq!(tax.len(), 595);
//! ```

#![warn(missing_docs)]

pub mod drift;
pub mod generator;
pub mod instances;
pub mod kind;
pub mod morphology;
pub mod names;
pub mod popularity;
pub mod profiles;
pub mod rng;
pub mod shape;

pub use generator::{
    generate, generate_par, GenError, GenOptions, PAR_STREAM_VERSION, SEQ_STREAM_VERSION,
};
pub use instances::InstanceGenerator;
pub use kind::TaxonomyKind;
pub use popularity::PopularityModel;
pub use profiles::TaxonomyProfile;
