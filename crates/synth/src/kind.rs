//! The ten benchmark taxonomies and their eight domains.

use std::fmt;
use std::str::FromStr;

/// The eight application domains of the paper (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Domain {
    /// Google / Amazon / eBay product categories.
    Shopping,
    /// Schema.org.
    General,
    /// ACM Computing Classification System.
    ComputerScience,
    /// GeoNames.
    Geography,
    /// Glottolog.
    Language,
    /// ICD-10-CM.
    Health,
    /// OAE (Ontology of Adverse Events).
    Medical,
    /// NCBI Taxonomy Database.
    Biology,
}

impl Domain {
    /// All domains in the paper's common-to-specialized presentation order.
    pub const ALL: [Domain; 8] = [
        Domain::Shopping,
        Domain::General,
        Domain::ComputerScience,
        Domain::Geography,
        Domain::Language,
        Domain::Health,
        Domain::Medical,
        Domain::Biology,
    ];

    /// Whether the paper classifies the domain's taxonomies as *common*
    /// (vs. *specialized*). eBay/Schema/Amazon/Google are the common
    /// representatives; the rest are specialized (§2.1, Figure 2).
    pub fn is_common(self) -> bool {
        matches!(self, Domain::Shopping | Domain::General)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Domain::Shopping => "Shopping",
            Domain::General => "General",
            Domain::ComputerScience => "Computer Science",
            Domain::Geography => "Geography",
            Domain::Language => "Language",
            Domain::Health => "Health",
            Domain::Medical => "Medical",
            Domain::Biology => "Biology",
        };
        f.write_str(s)
    }
}

/// The ten benchmark taxonomies, in the paper's column order
/// (Tables 4–7): eBay, Amazon, Google, Schema, ACM-CCS, GeoNames,
/// Glottolog, ICD-10-CM, OAE, NCBI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaxonomyKind {
    /// eBay Categories.
    Ebay,
    /// Amazon Product Category.
    Amazon,
    /// Google Product Category.
    Google,
    /// Schema.org.
    Schema,
    /// ACM Computing Classification System.
    AcmCcs,
    /// GeoNames geographical concepts.
    GeoNames,
    /// Glottolog languoids.
    Glottolog,
    /// ICD-10-CM disease classification.
    Icd10Cm,
    /// Ontology of Adverse Events.
    Oae,
    /// NCBI Taxonomy Database.
    Ncbi,
}

impl TaxonomyKind {
    /// All ten taxonomies in the paper's column order.
    pub const ALL: [TaxonomyKind; 10] = [
        TaxonomyKind::Ebay,
        TaxonomyKind::Amazon,
        TaxonomyKind::Google,
        TaxonomyKind::Schema,
        TaxonomyKind::AcmCcs,
        TaxonomyKind::GeoNames,
        TaxonomyKind::Glottolog,
        TaxonomyKind::Icd10Cm,
        TaxonomyKind::Oae,
        TaxonomyKind::Ncbi,
    ];

    /// The domain this taxonomy belongs to.
    pub fn domain(self) -> Domain {
        match self {
            TaxonomyKind::Ebay | TaxonomyKind::Amazon | TaxonomyKind::Google => Domain::Shopping,
            TaxonomyKind::Schema => Domain::General,
            TaxonomyKind::AcmCcs => Domain::ComputerScience,
            TaxonomyKind::GeoNames => Domain::Geography,
            TaxonomyKind::Glottolog => Domain::Language,
            TaxonomyKind::Icd10Cm => Domain::Health,
            TaxonomyKind::Oae => Domain::Medical,
            TaxonomyKind::Ncbi => Domain::Biology,
        }
    }

    /// Short lowercase label matching the paper's table headers.
    pub fn label(self) -> &'static str {
        match self {
            TaxonomyKind::Ebay => "ebay",
            TaxonomyKind::Amazon => "amazon",
            TaxonomyKind::Google => "google",
            TaxonomyKind::Schema => "schema",
            TaxonomyKind::AcmCcs => "acm-ccs",
            TaxonomyKind::GeoNames => "geonames",
            TaxonomyKind::Glottolog => "glottolog",
            TaxonomyKind::Icd10Cm => "icd-10-cm",
            TaxonomyKind::Oae => "oae",
            TaxonomyKind::Ncbi => "ncbi",
        }
    }

    /// Display name as printed in the paper's tables.
    pub fn display_name(self) -> &'static str {
        match self {
            TaxonomyKind::Ebay => "eBay",
            TaxonomyKind::Amazon => "Amazon",
            TaxonomyKind::Google => "Google",
            TaxonomyKind::Schema => "Schema",
            TaxonomyKind::AcmCcs => "ACM-CCS",
            TaxonomyKind::GeoNames => "GeoNames",
            TaxonomyKind::Glottolog => "Glottolog",
            TaxonomyKind::Icd10Cm => "ICD-10-CM",
            TaxonomyKind::Oae => "OAE",
            TaxonomyKind::Ncbi => "NCBI",
        }
    }

    /// Whether the instance-typing experiment (§4.5) covers this taxonomy.
    /// The paper skips eBay, Schema.org, ACM-CCS and GeoNames (no valid
    /// instances or no crawlable source).
    pub fn has_instances(self) -> bool {
        matches!(
            self,
            TaxonomyKind::Amazon
                | TaxonomyKind::Google
                | TaxonomyKind::Glottolog
                | TaxonomyKind::Icd10Cm
                | TaxonomyKind::Oae
                | TaxonomyKind::Ncbi
        )
    }
}

impl fmt::Display for TaxonomyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

impl FromStr for TaxonomyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TaxonomyKind::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(s) || k.display_name().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown taxonomy {s:?}"))
    }
}

taxoglimpse_json::unit_enum_json!(TaxonomyKind {
    Ebay, Amazon, Google, Schema, AcmCcs, GeoNames, Glottolog, Icd10Cm, Oae, Ncbi,
});

taxoglimpse_json::unit_enum_json!(Domain {
    Shopping, General, ComputerScience, Geography, Language, Health, Medical, Biology,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_taxonomies_eight_domains() {
        assert_eq!(TaxonomyKind::ALL.len(), 10);
        let mut domains: Vec<Domain> = TaxonomyKind::ALL.iter().map(|k| k.domain()).collect();
        domains.sort();
        domains.dedup();
        assert_eq!(domains.len(), 8);
    }

    #[test]
    fn shopping_has_three_taxonomies() {
        let shopping = TaxonomyKind::ALL
            .iter()
            .filter(|k| k.domain() == Domain::Shopping)
            .count();
        assert_eq!(shopping, 3);
    }

    #[test]
    fn instance_typing_covers_six() {
        let n = TaxonomyKind::ALL.iter().filter(|k| k.has_instances()).count();
        assert_eq!(n, 6);
        assert!(!TaxonomyKind::Ebay.has_instances());
        assert!(!TaxonomyKind::Schema.has_instances());
        assert!(!TaxonomyKind::AcmCcs.has_instances());
        assert!(!TaxonomyKind::GeoNames.has_instances());
    }

    #[test]
    fn from_str_accepts_both_forms() {
        assert_eq!("ncbi".parse::<TaxonomyKind>().unwrap(), TaxonomyKind::Ncbi);
        assert_eq!("ICD-10-CM".parse::<TaxonomyKind>().unwrap(), TaxonomyKind::Icd10Cm);
        assert!("nope".parse::<TaxonomyKind>().is_err());
    }

    #[test]
    fn common_vs_specialized_split() {
        assert!(Domain::Shopping.is_common());
        assert!(Domain::General.is_common());
        for d in [Domain::ComputerScience, Domain::Geography, Domain::Language, Domain::Health, Domain::Medical, Domain::Biology] {
            assert!(!d.is_common(), "{d} should be specialized");
        }
    }
}
