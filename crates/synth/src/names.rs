//! Per-domain name generation.
//!
//! [`Namer`] produces names for roots and children under a given
//! [`NameRegime`]. The regimes differ in exactly the dimension the
//! paper's analysis cares about: **how much of the parent's surface form
//! a child name shares**. NCBI species embed the genus, OAE children
//! embed the parent phrase, ICD child codes extend parent codes, while
//! Glottolog children are surface-independent of their parents.
//!
//! The `*_into` variants append to reusable byte buffers: generated
//! names are ASCII by construction, and working on `Vec<u8>` lets the
//! hot path skip per-fragment UTF-8 boundary checks (one validation
//! happens when the buffer is spliced into the taxonomy).

use crate::morphology::{pools, pseudo_word_cap_into, pseudo_word_into, push_cap, WordStyle};
use crate::profiles::NameRegime;
use crate::rng::Rng;
use crate::rng::SliceRandom;
use crate::rng::SynthRng;

/// Stateless name factory for one regime.
#[derive(Debug, Clone, Copy)]
pub struct Namer {
    regime: NameRegime,
}

impl Namer {
    /// Create a namer for `regime`.
    pub fn new(regime: NameRegime) -> Self {
        Namer { regime }
    }

    /// Name for the `tree_index`-th root.
    pub fn root(&self, rng: &mut SynthRng, tree_index: usize) -> String {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.root_into(&mut out, &mut scratch, rng, tree_index);
        String::from_utf8(out).expect("generated names are valid UTF-8")
    }

    /// Append the `tree_index`-th root's name to `out` — identical RNG
    /// draws and bytes as [`Namer::root`], with no per-name allocation.
    /// `scratch` is caller-provided reusable working space (cleared
    /// here) for arms whose draw order differs from their output order.
    pub fn root_into(
        &self,
        out: &mut Vec<u8>,
        scratch: &mut Vec<u8>,
        rng: &mut SynthRng,
        tree_index: usize,
    ) {
        match self.regime {
            NameRegime::Shopping => {
                let head = pools::PRODUCT_HEADS.choose(rng).expect("static name pools are non-empty");
                // Broad top-level category: bare head or an umbrella pair.
                if rng.gen_bool(0.4) {
                    out.extend_from_slice(head.as_bytes());
                } else {
                    let other = pools::PRODUCT_HEADS.choose(rng).expect("static name pools are non-empty");
                    out.extend_from_slice(head.as_bytes());
                    out.extend_from_slice(b" & ");
                    out.extend_from_slice(other.as_bytes());
                }
            }
            NameRegime::SchemaOrg => {
                const TOPS: &[&str] = &["Thing", "DataType", "Intangible", "Entity", "Resource"];
                match TOPS.get(tree_index) {
                    Some(s) => out.extend_from_slice(s.as_bytes()),
                    None => push_cap(
                        out,
                        pools::SCHEMA_STEMS.choose(rng).expect("static name pools are non-empty"),
                    ),
                }
            }
            NameRegime::AcmCcs => {
                const TOPS: &[&str] = &[
                    "Information systems", "Theory of computation", "Software and its engineering",
                    "Computer systems organization", "Computing methodologies", "Security and privacy",
                    "Networks", "Human-centered computing", "Hardware", "Applied computing",
                    "Mathematics of computing", "Social and professional topics", "General and reference",
                ];
                match TOPS.get(tree_index) {
                    Some(s) => out.extend_from_slice(s.as_bytes()),
                    None => {
                        // Title-case every space-separated word.
                        let area =
                            pools::CS_AREAS.choose(rng).expect("static name pools are non-empty");
                        for (i, word) in area.split(' ').enumerate() {
                            if i > 0 {
                                out.push(b' ');
                            }
                            push_cap(out, word);
                        }
                    }
                }
            }
            NameRegime::GeoNames => {
                const CLASSES: &[(&str, &str)] = &[
                    ("A", "country, state, region"),
                    ("H", "stream, lake"),
                    ("L", "parks, area"),
                    ("P", "city, village"),
                    ("R", "road, railroad"),
                    ("S", "spot, building, farm"),
                    ("T", "mountain, hill, rock"),
                    ("U", "undersea"),
                    ("V", "forest, heath"),
                ];
                let (code, desc) = CLASSES[tree_index % CLASSES.len()];
                out.extend_from_slice(code.as_bytes());
                out.extend_from_slice(" — ".as_bytes());
                out.extend_from_slice(desc.as_bytes());
            }
            NameRegime::Glottolog => {
                pseudo_word_cap_into(rng, WordStyle::Linguistic, 2, out);
            }
            NameRegime::Icd => {
                // Chapter: letter range + description.
                let letter = b'A' + (tree_index % 26) as u8;
                let site = pools::BODY_SITES.choose(rng).expect("static name pools are non-empty");
                out.push(letter);
                out.extend_from_slice(b"00-");
                out.push(letter);
                out.extend_from_slice(b"99 Diseases of the ");
                out.extend_from_slice(site.as_bytes());
                out.extend_from_slice(b" system");
            }
            NameRegime::Oae => {
                let site = pools::BODY_SITES.choose(rng).expect("static name pools are non-empty");
                let stem = pools::DISEASE_STEMS.choose(rng).expect("static name pools are non-empty");
                out.extend_from_slice(site.as_bytes());
                out.push(b' ');
                out.extend_from_slice(stem.as_bytes());
                out.extend_from_slice(b" AE");
            }
            NameRegime::Ncbi => {
                // Kingdom / high-level clade. All syllable fragments are
                // ASCII letters, so trimming trailing non-alphabetics is
                // a provable no-op — kept for robustness against future
                // fragment pools.
                let start = out.len();
                pseudo_word_cap_into(rng, WordStyle::Plain, 2, out);
                while out.len() > start
                    && !out.last().copied().unwrap_or(b'a').is_ascii_alphabetic()
                {
                    out.pop();
                }
                out.extend_from_slice(b"ota");
                let _ = scratch;
            }
        }
    }

    /// Name for a child at `level` (1-based relative to roots at 0) under
    /// a parent named `parent`.
    pub fn child(&self, rng: &mut SynthRng, level: usize, parent: &str, sibling_index: usize) -> String {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.child_into(&mut out, &mut scratch, rng, level, parent, sibling_index);
        String::from_utf8(out).expect("generated names are valid UTF-8")
    }

    /// Append a child name to `out` — identical RNG draws and bytes as
    /// [`Namer::child`], with no per-name allocation. `scratch` is
    /// caller-provided reusable working space (cleared here).
    pub fn child_into(
        &self,
        out: &mut Vec<u8>,
        scratch: &mut Vec<u8>,
        rng: &mut SynthRng,
        level: usize,
        parent: &str,
        sibling_index: usize,
    ) {
        match self.regime {
            NameRegime::Shopping => {
                let reuse_head = rng.gen_bool(0.55);
                let modifier = pools::PRODUCT_MODS.choose(rng).expect("static name pools are non-empty");
                let head = if reuse_head {
                    // Reuse the parent's head noun: moderate similarity.
                    parent.split(' ').next_back().unwrap_or(parent)
                } else {
                    pools::PRODUCT_HEADS.choose(rng).expect("static name pools are non-empty")
                };
                out.extend_from_slice(modifier.as_bytes());
                out.push(b' ');
                out.extend_from_slice(head.as_bytes());
            }
            NameRegime::SchemaOrg => {
                let stem = pools::SCHEMA_STEMS.choose(rng).expect("static name pools are non-empty");
                if rng.gen_bool(0.5) {
                    // Extend the parent's trailing CamelWord: PaymentAction.
                    push_cap(out, stem);
                    out.extend_from_slice(camel_tail(parent).as_bytes());
                } else {
                    let m = pools::SCHEMA_MODS.choose(rng).expect("static name pools are non-empty");
                    push_cap(out, m);
                    push_cap(out, stem);
                }
            }
            NameRegime::AcmCcs => {
                let q = pools::CS_QUALIFIERS.choose(rng).expect("static name pools are non-empty");
                let a = pools::CS_AREAS.choose(rng).expect("static name pools are non-empty");
                // capitalize("{q} {a}") only uppercases the first char.
                push_cap(out, q);
                out.push(b' ');
                out.extend_from_slice(a.as_bytes());
            }
            NameRegime::GeoNames => {
                let feature = if rng.gen_bool(0.35) {
                    pools::GEO_ADMIN.choose(rng).expect("static name pools are non-empty")
                } else {
                    pools::GEO_FEATURES.choose(rng).expect("static name pools are non-empty")
                };
                for &b in feature.as_bytes().iter().filter(|b| b.is_ascii_alphabetic()).take(3) {
                    out.push(b.to_ascii_uppercase());
                }
                push_digit(out, sibling_index % 10);
                out.push(b' ');
                out.extend_from_slice(feature.as_bytes());
            }
            NameRegime::Glottolog => {
                // Children diverge from their parents: fresh stems with
                // occasional areal prefixes. Deepest level: short dialect
                // names. The word is drawn *before* the prefix decision,
                // so it goes through `scratch` to keep the draw order.
                let syll = if level >= 5 { 2 } else { 2 + usize::from(rng.gen_bool(0.4)) };
                scratch.clear();
                pseudo_word_cap_into(rng, WordStyle::Linguistic, syll, scratch);
                if rng.gen_bool(0.25) && level < 5 {
                    const AREALS: &[&str] = &["North", "South", "East", "West", "Nuclear", "Core", "Inner", "Coastal", "Highland", "Central"];
                    out.extend_from_slice(
                        AREALS.choose(rng).expect("static name pools are non-empty").as_bytes(),
                    );
                    out.push(b' ');
                }
                out.extend_from_slice(scratch);
            }
            NameRegime::Icd => {
                // Extend the parent's code: A00-A99 → A3 block → A31 →
                // A31.4. The code prefix is the first whitespace token.
                let parent_code = parent.split(' ').next().unwrap_or("X");
                match level {
                    1 => {
                        let letter = parent_code.as_bytes().first().copied().unwrap_or(b'X');
                        let d = sibling_index % 10;
                        let site = pools::BODY_SITES.choose(rng).expect("static name pools are non-empty");
                        let stem = pools::DISEASE_STEMS.choose(rng).expect("static name pools are non-empty");
                        out.push(letter);
                        push_digit(out, d);
                        out.extend_from_slice(b"0-");
                        out.push(letter);
                        push_digit(out, d);
                        out.extend_from_slice(b"9 ");
                        push_cap(out, site);
                        out.push(b' ');
                        out.extend_from_slice(stem.as_bytes());
                    }
                    2 => {
                        let block = &parent_code[..2.min(parent_code.len())];
                        let d = sibling_index % 10;
                        let stem = pools::DISEASE_STEMS.choose(rng).expect("static name pools are non-empty");
                        let q = pools::AE_QUALIFIERS.choose(rng).expect("static name pools are non-empty");
                        out.extend_from_slice(block.as_bytes());
                        push_digit(out, d);
                        out.push(b' ');
                        push_cap(out, q);
                        out.push(b' ');
                        out.extend_from_slice(stem.as_bytes());
                    }
                    _ => {
                        let code = parent_code.split('-').next().unwrap_or(parent_code);
                        let d = sibling_index % 10;
                        let cause = ["viral", "bacterial", "toxic", "traumatic", "congenital", "idiopathic", "autoimmune", "postprocedural"]
                            .choose(rng)
                            .expect("static name pools are non-empty");
                        out.extend_from_slice(code.as_bytes());
                        out.push(b'.');
                        push_digit(out, d);
                        out.push(b' ');
                        push_cap(out, cause);
                        out.push(b' ');
                        if let Some((_, rest)) = parent.split_once(' ') {
                            // Byte-wise lowercasing matches the char-wise
                            // form: ASCII bytes map identically and bytes
                            // >= 0x80 are left untouched by both.
                            out.extend(rest.bytes().map(|b| b.to_ascii_lowercase()));
                        }
                    }
                }
            }
            NameRegime::Oae => {
                // Embed the parent phrase: "<qualifier> <parent>".
                let body = parent.strip_suffix(" AE").unwrap_or(parent);
                let q = pools::AE_QUALIFIERS.choose(rng).expect("static name pools are non-empty");
                out.extend_from_slice(q.as_bytes());
                out.push(b' ');
                out.extend_from_slice(body.as_bytes());
                out.extend_from_slice(b" AE");
            }
            NameRegime::Ncbi => {
                let suffix: &[u8] = match level {
                    1 => b"phyta",
                    2 => b"opsida",
                    3 => b"ales",
                    4 => b"aceae",
                    _ => b"",
                };
                match level {
                    1..=4 => {
                        pseudo_word_cap_into(rng, WordStyle::Plain, 2, out);
                        out.extend_from_slice(suffix);
                    }
                    5 => {
                        pseudo_word_cap_into(rng, WordStyle::Latin, 2, out);
                    }
                    _ => {
                        // Species: "<Genus> <epithet>" — embeds the genus
                        // name, which is what produces the paper's
                        // last-level uplift.
                        out.extend_from_slice(parent.as_bytes());
                        out.push(b' ');
                        pseudo_word_into(rng, WordStyle::Latin, 2, out);
                    }
                }
            }
        }
    }
}

/// Append one decimal digit (`d` must be < 10) without `core::fmt`.
#[inline]
fn push_digit(out: &mut Vec<u8>, d: usize) {
    debug_assert!(d < 10);
    out.push(b'0' + d as u8);
}

/// Trailing CamelCase word of a name (`CreativeWork` → `Work`).
fn camel_tail(name: &str) -> &str {
    let idx = name
        .char_indices()
        .rev()
        .find(|(i, c)| c.is_ascii_uppercase() && *i > 0)
        .map(|(i, _)| i)
        .unwrap_or(0);
    &name[idx..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fork;

    #[test]
    fn camel_tail_extracts_last_word() {
        assert_eq!(camel_tail("CreativeWork"), "Work");
        assert_eq!(camel_tail("Thing"), "Thing");
        assert_eq!(camel_tail("AggregateOfferAction"), "Action");
    }

    #[test]
    fn ncbi_species_embeds_genus() {
        let n = Namer::new(NameRegime::Ncbi);
        let mut rng = fork(1, "names", 0);
        let genus = n.child(&mut rng, 5, "Scrophulariaceae", 0);
        let species = n.child(&mut rng, 6, &genus, 0);
        assert!(species.starts_with(&genus), "{species} should embed {genus}");
        assert!(species.len() > genus.len() + 1);
    }

    #[test]
    fn oae_child_embeds_parent_phrase() {
        let n = Namer::new(NameRegime::Oae);
        let mut rng = fork(2, "names", 0);
        let root = n.root(&mut rng, 0);
        assert!(root.ends_with(" AE"));
        let child = n.child(&mut rng, 1, &root, 0);
        let body = root.strip_suffix(" AE").unwrap();
        assert!(child.contains(body), "{child} should embed {body}");
        assert!(child.ends_with(" AE"));
    }

    #[test]
    fn icd_child_codes_extend_parent_codes() {
        let n = Namer::new(NameRegime::Icd);
        let mut rng = fork(3, "names", 0);
        let root = n.root(&mut rng, 0); // A00-A99 ...
        assert!(root.starts_with("A00-A99"));
        let l1 = n.child(&mut rng, 1, &root, 3);
        assert!(l1.starts_with("A3"), "level-1 code should extend chapter letter: {l1}");
        let l2 = n.child(&mut rng, 2, &l1, 7);
        assert!(l2.starts_with("A37"), "level-2 code {l2} should extend block A3");
        let l3 = n.child(&mut rng, 3, &l2, 2);
        assert!(l3.starts_with("A37.2"), "level-3 code {l3} should extend A37");
    }

    #[test]
    fn glottolog_children_do_not_embed_parents() {
        let n = Namer::new(NameRegime::Glottolog);
        let mut rng = fork(4, "names", 0);
        let root = n.root(&mut rng, 0);
        let mut embeds = 0;
        for i in 0..50 {
            let c = n.child(&mut rng, 1, &root, i);
            if c.contains(&root) {
                embeds += 1;
            }
        }
        assert_eq!(embeds, 0, "glottolog children should not embed family names");
    }

    #[test]
    fn geonames_roots_are_the_nine_classes() {
        let n = Namer::new(NameRegime::GeoNames);
        let mut rng = fork(5, "names", 0);
        let roots: Vec<String> = (0..9).map(|i| n.root(&mut rng, i)).collect();
        let mut dedup = roots.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 9);
        assert!(roots[0].starts_with("A —"));
    }

    #[test]
    fn shopping_names_look_like_categories() {
        let n = Namer::new(NameRegime::Shopping);
        let mut rng = fork(6, "names", 0);
        let root = n.root(&mut rng, 0);
        assert!(!root.is_empty());
        let child = n.child(&mut rng, 1, "Home & Kitchen", 0);
        assert!(child.contains(' '), "child {child:?} should be a phrase");
    }

    #[test]
    fn schema_names_are_camel_case() {
        let n = Namer::new(NameRegime::SchemaOrg);
        let mut rng = fork(7, "names", 0);
        for i in 0..20 {
            let c = n.child(&mut rng, 2, "CreativeWork", i);
            assert!(c.chars().next().unwrap().is_ascii_uppercase());
            assert!(!c.contains(' '), "{c:?} should be CamelCase");
        }
    }

    #[test]
    fn acm_names_are_qualified_areas() {
        let n = Namer::new(NameRegime::AcmCcs);
        let mut rng = fork(8, "names", 0);
        let c = n.child(&mut rng, 2, "Information systems", 0);
        assert!(c.contains(' '));
        assert!(c.chars().next().unwrap().is_ascii_uppercase());
    }
}
