//! Per-domain name generation.
//!
//! [`Namer`] produces names for roots and children under a given
//! [`NameRegime`]. The regimes differ in exactly the dimension the
//! paper's analysis cares about: **how much of the parent's surface form
//! a child name shares**. NCBI species embed the genus, OAE children
//! embed the parent phrase, ICD child codes extend parent codes, while
//! Glottolog children are surface-independent of their parents.

use crate::morphology::{camel_case, capitalize, pools, pseudo_word, title_case, WordStyle};
use crate::profiles::NameRegime;
use crate::rng::SynthRng;
use crate::rng::SliceRandom;
use crate::rng::Rng;

/// Stateless name factory for one regime.
#[derive(Debug, Clone, Copy)]
pub struct Namer {
    regime: NameRegime,
}

impl Namer {
    /// Create a namer for `regime`.
    pub fn new(regime: NameRegime) -> Self {
        Namer { regime }
    }

    /// Name for the `tree_index`-th root.
    pub fn root(&self, rng: &mut SynthRng, tree_index: usize) -> String {
        match self.regime {
            NameRegime::Shopping => {
                let head = pools::PRODUCT_HEADS.choose(rng).expect("static name pools are non-empty");
                // Broad top-level category: bare head or an umbrella pair.
                if rng.gen_bool(0.4) {
                    (*head).to_owned()
                } else {
                    let other = pools::PRODUCT_HEADS.choose(rng).expect("static name pools are non-empty");
                    format!("{head} & {other}")
                }
            }
            NameRegime::SchemaOrg => {
                const TOPS: &[&str] = &["Thing", "DataType", "Intangible", "Entity", "Resource"];
                TOPS.get(tree_index)
                    .map(|s| (*s).to_owned())
                    .unwrap_or_else(|| camel_case(&[pools::SCHEMA_STEMS.choose(rng).expect("static name pools are non-empty")]))
            }
            NameRegime::AcmCcs => {
                const TOPS: &[&str] = &[
                    "Information systems", "Theory of computation", "Software and its engineering",
                    "Computer systems organization", "Computing methodologies", "Security and privacy",
                    "Networks", "Human-centered computing", "Hardware", "Applied computing",
                    "Mathematics of computing", "Social and professional topics", "General and reference",
                ];
                TOPS.get(tree_index)
                    .map(|s| (*s).to_owned())
                    .unwrap_or_else(|| title_case(pools::CS_AREAS.choose(rng).expect("static name pools are non-empty")))
            }
            NameRegime::GeoNames => {
                const CLASSES: &[(&str, &str)] = &[
                    ("A", "country, state, region"),
                    ("H", "stream, lake"),
                    ("L", "parks, area"),
                    ("P", "city, village"),
                    ("R", "road, railroad"),
                    ("S", "spot, building, farm"),
                    ("T", "mountain, hill, rock"),
                    ("U", "undersea"),
                    ("V", "forest, heath"),
                ];
                let (code, desc) = CLASSES[tree_index % CLASSES.len()];
                format!("{code} — {desc}")
            }
            NameRegime::Glottolog => {
                let stem = pseudo_word(rng, WordStyle::Linguistic, 2);
                capitalize(&stem)
            }
            NameRegime::Icd => {
                // Chapter: letter range + description.
                let letter = (b'A' + (tree_index % 26) as u8) as char;
                let site = pools::BODY_SITES.choose(rng).expect("static name pools are non-empty");
                format!("{letter}00-{letter}99 Diseases of the {site} system")
            }
            NameRegime::Oae => {
                let site = pools::BODY_SITES.choose(rng).expect("static name pools are non-empty");
                let stem = pools::DISEASE_STEMS.choose(rng).expect("static name pools are non-empty");
                format!("{site} {stem} AE")
            }
            NameRegime::Ncbi => {
                // Kingdom / high-level clade.
                let stem = pseudo_word(rng, WordStyle::Plain, 2);
                format!("{}ota", capitalize(stem.trim_end_matches(|c: char| !c.is_ascii_alphabetic())))
            }
        }
    }

    /// Name for a child at `level` (1-based relative to roots at 0) under
    /// a parent named `parent`.
    pub fn child(&self, rng: &mut SynthRng, level: usize, parent: &str, sibling_index: usize) -> String {
        match self.regime {
            NameRegime::Shopping => {
                let reuse_head = rng.gen_bool(0.55);
                let modifier = pools::PRODUCT_MODS.choose(rng).expect("static name pools are non-empty");
                if reuse_head {
                    // Reuse the parent's head noun: moderate similarity.
                    let head = parent.split(' ').next_back().unwrap_or(parent);
                    format!("{modifier} {head}")
                } else {
                    let head = pools::PRODUCT_HEADS.choose(rng).expect("static name pools are non-empty");
                    format!("{modifier} {head}")
                }
            }
            NameRegime::SchemaOrg => {
                let stem = capitalize(pools::SCHEMA_STEMS.choose(rng).expect("static name pools are non-empty"));
                if rng.gen_bool(0.5) {
                    // Extend the parent's trailing CamelWord: PaymentAction.
                    let tail = camel_tail(parent);
                    format!("{stem}{tail}")
                } else {
                    let m = capitalize(pools::SCHEMA_MODS.choose(rng).expect("static name pools are non-empty"));
                    format!("{m}{stem}")
                }
            }
            NameRegime::AcmCcs => {
                let q = pools::CS_QUALIFIERS.choose(rng).expect("static name pools are non-empty");
                let a = pools::CS_AREAS.choose(rng).expect("static name pools are non-empty");
                capitalize(&format!("{q} {a}"))
            }
            NameRegime::GeoNames => {
                let feature = if rng.gen_bool(0.35) {
                    pools::GEO_ADMIN.choose(rng).expect("static name pools are non-empty")
                } else {
                    pools::GEO_FEATURES.choose(rng).expect("static name pools are non-empty")
                };
                let code: String = feature
                    .chars()
                    .filter(|c| c.is_ascii_alphabetic())
                    .take(3)
                    .map(|c| c.to_ascii_uppercase())
                    .collect();
                format!("{code}{} {feature}", sibling_index % 10)
            }
            NameRegime::Glottolog => {
                // Children diverge from their parents: fresh stems with
                // occasional areal prefixes. Deepest level: short dialect
                // names.
                let syll = if level >= 5 { 2 } else { 2 + usize::from(rng.gen_bool(0.4)) };
                let stem = capitalize(&pseudo_word(rng, WordStyle::Linguistic, syll));
                if rng.gen_bool(0.25) && level < 5 {
                    const AREALS: &[&str] = &["North", "South", "East", "West", "Nuclear", "Core", "Inner", "Coastal", "Highland", "Central"];
                    format!("{} {stem}", AREALS.choose(rng).expect("static name pools are non-empty"))
                } else {
                    stem
                }
            }
            NameRegime::Icd => {
                // Extend the parent's code: A00-A99 → A3 block → A31 →
                // A31.4. The code prefix is the first whitespace token.
                let parent_code = parent.split(' ').next().unwrap_or("X");
                match level {
                    1 => {
                        let letter = parent_code.chars().next().unwrap_or('X');
                        let d = sibling_index % 10;
                        let site = pools::BODY_SITES.choose(rng).expect("static name pools are non-empty");
                        let stem = pools::DISEASE_STEMS.choose(rng).expect("static name pools are non-empty");
                        format!("{letter}{d}0-{letter}{d}9 {} {stem}", capitalize(site))
                    }
                    2 => {
                        let block = &parent_code[..2.min(parent_code.len())];
                        let d = sibling_index % 10;
                        let stem = pools::DISEASE_STEMS.choose(rng).expect("static name pools are non-empty");
                        let q = pools::AE_QUALIFIERS.choose(rng).expect("static name pools are non-empty");
                        format!("{block}{d} {} {stem}", capitalize(q))
                    }
                    _ => {
                        let code = parent_code.split('-').next().unwrap_or(parent_code);
                        let d = sibling_index % 10;
                        let cause = ["viral", "bacterial", "toxic", "traumatic", "congenital", "idiopathic", "autoimmune", "postprocedural"]
                            .choose(rng)
                            .expect("static name pools are non-empty");
                        let tail: String = parent
                            .split_once(' ')
                            .map(|(_, rest)| rest.to_ascii_lowercase())
                            .unwrap_or_default();
                        format!("{code}.{d} {} {tail}", capitalize(cause))
                    }
                }
            }
            NameRegime::Oae => {
                // Embed the parent phrase: "<qualifier> <parent>".
                let body = parent.strip_suffix(" AE").unwrap_or(parent);
                let q = pools::AE_QUALIFIERS.choose(rng).expect("static name pools are non-empty");
                format!("{q} {body} AE")
            }
            NameRegime::Ncbi => match level {
                1 => format!("{}phyta", capitalize(&pseudo_word(rng, WordStyle::Plain, 2))),
                2 => format!("{}opsida", capitalize(&pseudo_word(rng, WordStyle::Plain, 2))),
                3 => format!("{}ales", capitalize(&pseudo_word(rng, WordStyle::Plain, 2))),
                4 => format!("{}aceae", capitalize(&pseudo_word(rng, WordStyle::Plain, 2))),
                5 => capitalize(&pseudo_word(rng, WordStyle::Latin, 2)),
                _ => {
                    // Species: "<Genus> <epithet>" — embeds the genus name,
                    // which is what produces the paper's last-level uplift.
                    let epithet = pseudo_word(rng, WordStyle::Latin, 2);
                    format!("{parent} {epithet}")
                }
            },
        }
    }
}

/// Trailing CamelCase word of a name (`CreativeWork` → `Work`).
fn camel_tail(name: &str) -> &str {
    let idx = name
        .char_indices()
        .rev()
        .find(|(i, c)| c.is_ascii_uppercase() && *i > 0)
        .map(|(i, _)| i)
        .unwrap_or(0);
    &name[idx..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fork;

    #[test]
    fn camel_tail_extracts_last_word() {
        assert_eq!(camel_tail("CreativeWork"), "Work");
        assert_eq!(camel_tail("Thing"), "Thing");
        assert_eq!(camel_tail("AggregateOfferAction"), "Action");
    }

    #[test]
    fn ncbi_species_embeds_genus() {
        let n = Namer::new(NameRegime::Ncbi);
        let mut rng = fork(1, "names", 0);
        let genus = n.child(&mut rng, 5, "Scrophulariaceae", 0);
        let species = n.child(&mut rng, 6, &genus, 0);
        assert!(species.starts_with(&genus), "{species} should embed {genus}");
        assert!(species.len() > genus.len() + 1);
    }

    #[test]
    fn oae_child_embeds_parent_phrase() {
        let n = Namer::new(NameRegime::Oae);
        let mut rng = fork(2, "names", 0);
        let root = n.root(&mut rng, 0);
        assert!(root.ends_with(" AE"));
        let child = n.child(&mut rng, 1, &root, 0);
        let body = root.strip_suffix(" AE").unwrap();
        assert!(child.contains(body), "{child} should embed {body}");
        assert!(child.ends_with(" AE"));
    }

    #[test]
    fn icd_child_codes_extend_parent_codes() {
        let n = Namer::new(NameRegime::Icd);
        let mut rng = fork(3, "names", 0);
        let root = n.root(&mut rng, 0); // A00-A99 ...
        assert!(root.starts_with("A00-A99"));
        let l1 = n.child(&mut rng, 1, &root, 3);
        assert!(l1.starts_with("A3"), "level-1 code should extend chapter letter: {l1}");
        let l2 = n.child(&mut rng, 2, &l1, 7);
        assert!(l2.starts_with("A37"), "level-2 code {l2} should extend block A3");
        let l3 = n.child(&mut rng, 3, &l2, 2);
        assert!(l3.starts_with("A37.2"), "level-3 code {l3} should extend A37");
    }

    #[test]
    fn glottolog_children_do_not_embed_parents() {
        let n = Namer::new(NameRegime::Glottolog);
        let mut rng = fork(4, "names", 0);
        let root = n.root(&mut rng, 0);
        let mut embeds = 0;
        for i in 0..50 {
            let c = n.child(&mut rng, 1, &root, i);
            if c.contains(&root) {
                embeds += 1;
            }
        }
        assert_eq!(embeds, 0, "glottolog children should not embed family names");
    }

    #[test]
    fn geonames_roots_are_the_nine_classes() {
        let n = Namer::new(NameRegime::GeoNames);
        let mut rng = fork(5, "names", 0);
        let roots: Vec<String> = (0..9).map(|i| n.root(&mut rng, i)).collect();
        let mut dedup = roots.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 9);
        assert!(roots[0].starts_with("A —"));
    }

    #[test]
    fn shopping_names_look_like_categories() {
        let n = Namer::new(NameRegime::Shopping);
        let mut rng = fork(6, "names", 0);
        let root = n.root(&mut rng, 0);
        assert!(!root.is_empty());
        let child = n.child(&mut rng, 1, "Home & Kitchen", 0);
        assert!(child.contains(' '), "child {child:?} should be a phrase");
    }

    #[test]
    fn schema_names_are_camel_case() {
        let n = Namer::new(NameRegime::SchemaOrg);
        let mut rng = fork(7, "names", 0);
        for i in 0..20 {
            let c = n.child(&mut rng, 2, "CreativeWork", i);
            assert!(c.chars().next().unwrap().is_ascii_uppercase());
            assert!(!c.contains(' '), "{c:?} should be CamelCase");
        }
    }

    #[test]
    fn acm_names_are_qualified_areas() {
        let n = Namer::new(NameRegime::AcmCcs);
        let mut rng = fork(8, "names", 0);
        let c = n.child(&mut rng, 2, "Information systems", 0);
        assert!(c.contains(' '));
        assert!(c.chars().next().unwrap().is_ascii_uppercase());
    }
}
