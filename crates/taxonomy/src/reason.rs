//! Structural reasoning: lowest common ancestors, tree distance, and
//! subsumption checks — the "knowledge reasoning" primitives the paper's
//! introduction lists among taxonomy use cases.

use crate::arena::Taxonomy;
use crate::node::NodeId;

impl Taxonomy {
    /// Lowest common ancestor of `a` and `b`, or `None` when they live
    /// in different trees. `lca(x, x) == Some(x)`.
    pub fn lca(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        let (mut x, mut y) = (a, b);
        // Climb the deeper node to the shallower's level, then climb in
        // lockstep.
        while self.level(x) > self.level(y) {
            x = self.parent(x)?;
        }
        while self.level(y) > self.level(x) {
            y = self.parent(y)?;
        }
        loop {
            if x == y {
                return Some(x);
            }
            match (self.parent(x), self.parent(y)) {
                (Some(px), Some(py)) => {
                    x = px;
                    y = py;
                }
                _ => return None, // reached distinct roots
            }
        }
    }

    /// Number of edges on the tree path between `a` and `b`, or `None`
    /// when they are in different trees.
    pub fn tree_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let anc = self.lca(a, b)?;
        Some(self.level(a) + self.level(b) - 2 * self.level(anc))
    }

    /// Subsumption: does concept `general` subsume `specific` (i.e. is
    /// `general` the same node or an ancestor)?
    pub fn subsumes(&self, general: NodeId, specific: NodeId) -> bool {
        general == specific || self.is_ancestor(general, specific)
    }

    /// The most specific concept among `candidates` that subsumes
    /// `node`, if any — e.g. mapping a product to the deepest applicable
    /// category from a candidate set.
    pub fn most_specific_subsumer(&self, node: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .filter(|&c| self.subsumes(c, node))
            .max_by_key(|&c| self.level(c))
    }
}

#[cfg(test)]
mod tests {
    use crate::TaxonomyBuilder;

    fn sample() -> (crate::Taxonomy, Vec<crate::NodeId>) {
        // r ── a ── b ── c
        //  \        └── d
        //   \─ e
        // r2 ─ f
        let mut b = TaxonomyBuilder::new("t");
        let r = b.add_root("r");
        let a = b.add_child(r, "a");
        let bb = b.add_child(a, "b");
        let c = b.add_child(bb, "c");
        let d = b.add_child(bb, "d");
        let e = b.add_child(r, "e");
        let r2 = b.add_root("r2");
        let f = b.add_child(r2, "f");
        (b.build().unwrap(), vec![r, a, bb, c, d, e, r2, f])
    }

    #[test]
    fn lca_basics() {
        let (t, ids) = sample();
        let [r, a, bb, c, d, e, r2, f] = ids[..] else { unreachable!() };
        assert_eq!(t.lca(c, d), Some(bb));
        assert_eq!(t.lca(c, e), Some(r));
        assert_eq!(t.lca(a, a), Some(a));
        assert_eq!(t.lca(r, c), Some(r));
        assert_eq!(t.lca(c, r), Some(r), "symmetric");
        assert_eq!(t.lca(c, f), None, "different trees");
        assert_eq!(t.lca(r, r2), None);
    }

    #[test]
    fn tree_distance() {
        let (t, ids) = sample();
        let [r, a, _bb, c, d, e, _r2, f] = ids[..] else { unreachable!() };
        assert_eq!(t.tree_distance(c, d), Some(2));
        assert_eq!(t.tree_distance(c, c), Some(0));
        assert_eq!(t.tree_distance(c, e), Some(4));
        assert_eq!(t.tree_distance(r, a), Some(1));
        assert_eq!(t.tree_distance(c, f), None);
    }

    #[test]
    fn subsumption() {
        let (t, ids) = sample();
        let [r, a, bb, c, ..] = ids[..] else { unreachable!() };
        assert!(t.subsumes(r, c));
        assert!(t.subsumes(a, c));
        assert!(t.subsumes(c, c));
        assert!(!t.subsumes(c, a));
        assert!(!t.subsumes(bb, a));
    }

    #[test]
    fn most_specific_subsumer_picks_deepest() {
        let (t, ids) = sample();
        let [r, a, bb, c, _d, e, ..] = ids[..] else { unreachable!() };
        assert_eq!(t.most_specific_subsumer(c, &[r, a, bb]), Some(bb));
        assert_eq!(t.most_specific_subsumer(c, &[r, e]), Some(r));
        assert_eq!(t.most_specific_subsumer(e, &[a, bb]), None);
    }
}
