//! Taxonomy merging — taxonomy-aware catalog integration (the use case
//! behind the paper's citation \[61\]): combine two releases or two
//! vendors' taxonomies into one forest, gluing nodes by full name path.
//!
//! The left taxonomy's structure wins; paths that exist only in the
//! right are grafted under their (path-matched) parents. Conflicting
//! placements of the same-named node simply coexist (names are not
//! global keys — exactly like real product taxonomies).

use crate::arena::Taxonomy;
use crate::builder::TaxonomyBuilder;
use crate::node::NodeId;
use std::collections::BTreeMap;

/// Statistics of a merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeStats {
    /// Nodes taken from the left taxonomy.
    pub from_left: usize,
    /// Nodes grafted from the right (paths absent on the left).
    pub grafted: usize,
}

/// Merge `left` and `right` by full name paths.
///
/// Returns the merged taxonomy (labelled `"<left>+<right>"`) and the
/// merge statistics. The merged forest always validates: grafted nodes
/// attach to the node matching their parent's path, which exists by
/// construction (paths are processed shallowest-first).
pub fn merge(left: &Taxonomy, right: &Taxonomy) -> (Taxonomy, MergeStats) {
    let mut b = TaxonomyBuilder::with_capacity(
        format!("{}+{}", left.label(), right.label()),
        left.len() + right.len(),
        16,
    );
    // Map full path -> new node id (ordered for D001; lookup-only, but
    // ordered-by-default keeps the invariant checkable mechanically).
    let mut by_path: BTreeMap<String, NodeId> = BTreeMap::new();

    // 1. Copy the left taxonomy wholesale, level by level.
    let mut left_map: Vec<Option<NodeId>> = vec![None; left.len()];
    for level in 0..left.num_levels() {
        for &id in left.nodes_at_level(level) {
            let new_id = match left.parent(id) {
                None => b.add_root(left.name(id)),
                Some(p) => b.add_child(left_map[p.index()].expect("parents first"), left.name(id)),
            };
            left_map[id.index()] = Some(new_id);
            by_path.insert(crate::diff::path_of(left, id), new_id);
        }
    }
    let from_left = b.len();

    // 2. Graft right-only paths, shallowest first so parents exist.
    let mut grafted = 0usize;
    for level in 0..right.num_levels() {
        for &id in right.nodes_at_level(level) {
            let path = crate::diff::path_of(right, id);
            if by_path.contains_key(&path) {
                continue;
            }
            let new_id = match right.parent(id) {
                None => b.add_root(right.name(id)),
                Some(p) => {
                    let parent_path = crate::diff::path_of(right, p);
                    let &parent_new = by_path
                        .get(&parent_path)
                        .expect("parent path was inserted at the previous level");
                    b.add_child(parent_new, right.name(id))
                }
            };
            by_path.insert(path, new_id);
            grafted += 1;
        }
    }

    let taxonomy = b.build().expect("merge does not exceed depth limits");
    (taxonomy, MergeStats { from_left, grafted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff;
    use crate::validate;

    fn left() -> Taxonomy {
        let mut b = TaxonomyBuilder::new("L");
        let r = b.add_root("Root");
        let a = b.add_child(r, "Alpha");
        b.add_child(a, "Alpha-1");
        b.add_child(r, "Beta");
        b.build().unwrap()
    }

    fn right() -> Taxonomy {
        let mut b = TaxonomyBuilder::new("R");
        let r = b.add_root("Root");
        let a = b.add_child(r, "Alpha");
        b.add_child(a, "Alpha-2"); // new under shared parent
        let g = b.add_child(r, "Gamma"); // entirely new branch
        b.add_child(g, "Gamma-1");
        b.build().unwrap()
    }

    #[test]
    fn merge_is_union_by_path() {
        let (merged, stats) = merge(&left(), &right());
        validate(&merged).unwrap();
        assert_eq!(stats.from_left, 4);
        assert_eq!(stats.grafted, 3); // Alpha-2, Gamma, Gamma-1
        assert_eq!(merged.len(), 7);
        assert_eq!(merged.label(), "L+R");
        // The union contains everything from both sides.
        let d_left = diff(&left(), &merged);
        assert!(d_left.removed.is_empty(), "{:?}", d_left.removed);
        let d_right = diff(&right(), &merged);
        assert!(d_right.removed.is_empty(), "{:?}", d_right.removed);
    }

    #[test]
    fn merge_with_self_is_identity_sized() {
        let t = left();
        let (merged, stats) = merge(&t, &t);
        assert_eq!(merged.len(), t.len());
        assert_eq!(stats.grafted, 0);
        assert!(diff(&t, &merged).is_empty());
    }

    #[test]
    fn merge_with_empty() {
        let t = left();
        let empty = TaxonomyBuilder::new("E").build().unwrap();
        let (merged, stats) = merge(&t, &empty);
        assert_eq!(merged.len(), t.len());
        assert_eq!(stats.grafted, 0);
        let (merged2, stats2) = merge(&empty, &t);
        assert_eq!(merged2.len(), t.len());
        assert_eq!(stats2.from_left, 0);
        assert_eq!(stats2.grafted, t.len());
        validate(&merged2).unwrap();
    }

    #[test]
    fn disjoint_roots_coexist() {
        let mut b = TaxonomyBuilder::new("other");
        let r = b.add_root("Entirely-Different");
        b.add_child(r, "Child");
        let other = b.build().unwrap();
        let (merged, stats) = merge(&left(), &other);
        validate(&merged).unwrap();
        assert_eq!(merged.roots().len(), 2);
        assert_eq!(stats.grafted, 2);
    }

    #[test]
    fn same_name_different_paths_both_survive() {
        // "Twin" under Alpha on the left, under Beta on the right: they
        // are different concepts (different paths) and must both exist.
        let mut lb = TaxonomyBuilder::new("L");
        let r = lb.add_root("Root");
        let a = lb.add_child(r, "Alpha");
        lb.add_child(a, "Twin");
        lb.add_child(r, "Beta");
        let l = lb.build().unwrap();

        let mut rb = TaxonomyBuilder::new("R");
        let r2 = rb.add_root("Root");
        rb.add_child(r2, "Alpha");
        let beta = rb.add_child(r2, "Beta");
        rb.add_child(beta, "Twin");
        let rt = rb.build().unwrap();

        let (merged, _) = merge(&l, &rt);
        validate(&merged).unwrap();
        let idx = merged.name_index();
        assert_eq!(idx.lookup("Twin").len(), 2);
    }
}
