//! Structure-editing operations.
//!
//! A [`Taxonomy`] is immutable; edits produce a new taxonomy (ids are
//! *not* stable across edits — the returned [`EditOutcome`] carries the
//! old-to-new id mapping). These operations back the paper's §5.3 case
//! study, where the Amazon Product Category's level-4-and-below nodes are
//! removed and replaced by an LLM.

use crate::arena::Taxonomy;
use crate::builder::TaxonomyBuilder;
use crate::node::NodeId;

/// Result of an edit: the new taxonomy plus an id remapping.
#[derive(Debug, Clone)]
pub struct EditOutcome {
    /// The edited taxonomy.
    pub taxonomy: Taxonomy,
    /// `remap[old.index()]` is the node's id in the new taxonomy, or
    /// `None` if the node was removed.
    pub remap: Vec<Option<NodeId>>,
}

impl EditOutcome {
    /// Translate an old id into the new taxonomy, if it survived.
    pub fn map(&self, old: NodeId) -> Option<NodeId> {
        self.remap[old.index()]
    }
}

impl Taxonomy {
    fn rebuild_keeping(&self, keep: impl Fn(NodeId) -> bool) -> EditOutcome {
        let mut b = TaxonomyBuilder::with_capacity(self.label(), self.len(), 16);
        let mut remap: Vec<Option<NodeId>> = vec![None; self.len()];
        // Level-order over the per-level index guarantees parents are
        // mapped before their children.
        for level in 0..self.num_levels() {
            for &id in self.nodes_at_level(level) {
                if !keep(id) {
                    continue;
                }
                let new_id = match self.parent(id) {
                    None => b.add_root(self.name(id)),
                    Some(p) => match remap[p.index()] {
                        Some(np) => b.add_child(np, self.name(id)),
                        // Parent was removed: orphaned descendants are
                        // dropped too (the keep predicate should already
                        // be ancestor-closed for intentional keeps).
                        None => continue,
                    },
                };
                remap[id.index()] = Some(new_id);
            }
        }
        EditOutcome {
            taxonomy: b.build().expect("rebuilt taxonomy cannot exceed original depth"),
            remap,
        }
    }

    /// Remove every node at `cutoff_level` or deeper, keeping levels
    /// `0..cutoff_level`. This is the §5.3 operation: truncating Amazon at
    /// level 4 keeps root..level-3 and deletes the 25,777 level-4+ nodes.
    pub fn truncate_below(&self, cutoff_level: usize) -> EditOutcome {
        self.rebuild_keeping(|id| self.level(id) < cutoff_level)
    }

    /// Remove the subtree rooted at `node` (including `node`).
    pub fn remove_subtree(&self, node: NodeId) -> EditOutcome {
        self.rebuild_keeping(|id| id != node && !self.is_ancestor(node, id))
    }

    /// Extract the subtree rooted at `node` as a standalone taxonomy
    /// (with `node` as its only root).
    pub fn subtree(&self, node: NodeId) -> EditOutcome {
        let mut keep = vec![false; self.len()];
        for d in self.descendants(node) {
            keep[d.index()] = true;
        }
        let mut b = TaxonomyBuilder::new(format!("{}:{}", self.label(), self.name(node)));
        let mut remap: Vec<Option<NodeId>> = vec![None; self.len()];
        for level in self.level(node)..self.num_levels() {
            for &id in self.nodes_at_level(level) {
                if !keep[id.index()] {
                    continue;
                }
                let new_id = if id == node {
                    b.add_root(self.name(id))
                } else {
                    let p = self.parent(id).expect("non-root descendant has a parent");
                    b.add_child(remap[p.index()].expect("parent mapped first"), self.name(id))
                };
                remap[id.index()] = Some(new_id);
            }
        }
        EditOutcome { taxonomy: b.build().expect("subtree depth bounded by original"), remap }
    }

    /// Keep only nodes accepted by `pred` whose entire ancestor chain is
    /// also accepted (descendants of removed nodes are dropped).
    pub fn prune(&self, pred: impl Fn(NodeId) -> bool) -> EditOutcome {
        self.rebuild_keeping(pred)
    }
}

#[cfg(test)]
mod tests {
    use crate::{validate, TaxonomyBuilder};

    fn sample() -> (crate::Taxonomy, Vec<crate::NodeId>) {
        let mut b = TaxonomyBuilder::new("t");
        let r = b.add_root("r");
        let a = b.add_child(r, "a");
        let b1 = b.add_child(a, "b1");
        let c = b.add_child(b1, "c");
        let d = b.add_child(r, "d");
        (b.build().unwrap(), vec![r, a, b1, c, d])
    }

    #[test]
    fn truncate_below_removes_deep_levels() {
        let (t, ids) = sample();
        let out = t.truncate_below(2);
        validate(&out.taxonomy).unwrap();
        assert_eq!(out.taxonomy.len(), 3); // r, a, d
        assert_eq!(out.taxonomy.num_levels(), 2);
        assert!(out.map(ids[0]).is_some());
        assert!(out.map(ids[2]).is_none());
        assert!(out.map(ids[3]).is_none());
        // Names preserved through the remap.
        let new_a = out.map(ids[1]).unwrap();
        assert_eq!(out.taxonomy.name(new_a), "a");
    }

    #[test]
    fn truncate_below_zero_empties() {
        let (t, _) = sample();
        let out = t.truncate_below(0);
        assert!(out.taxonomy.is_empty());
    }

    #[test]
    fn remove_subtree() {
        let (t, ids) = sample();
        let out = t.remove_subtree(ids[1]); // remove a (and b1, c)
        validate(&out.taxonomy).unwrap();
        assert_eq!(out.taxonomy.len(), 2); // r, d
        assert!(out.map(ids[1]).is_none());
        assert!(out.map(ids[3]).is_none());
        assert!(out.map(ids[4]).is_some());
    }

    #[test]
    fn subtree_extraction() {
        let (t, ids) = sample();
        let out = t.subtree(ids[1]); // a -> b1 -> c
        validate(&out.taxonomy).unwrap();
        assert_eq!(out.taxonomy.len(), 3);
        assert_eq!(out.taxonomy.roots().len(), 1);
        let new_root = out.map(ids[1]).unwrap();
        assert_eq!(out.taxonomy.name(new_root), "a");
        assert_eq!(out.taxonomy.level(new_root), 0);
        assert_eq!(out.taxonomy.num_levels(), 3);
    }

    #[test]
    fn prune_drops_descendants_of_removed() {
        let (t, ids) = sample();
        // Reject b1; c must disappear even though pred accepts it.
        let b1 = ids[2];
        let out = t.prune(|id| id != b1);
        validate(&out.taxonomy).unwrap();
        assert_eq!(out.taxonomy.len(), 3); // r, a, d
        assert!(out.map(ids[3]).is_none());
    }
}
