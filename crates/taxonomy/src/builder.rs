//! Incremental construction of [`Taxonomy`] values.

use crate::arena::{Taxonomy, NO_PARENT};
use crate::node::NodeId;
use std::fmt;

/// Errors surfaced while building a taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The arena index space (u32) is exhausted.
    TooManyNodes,
    /// A node would sit deeper than [`TaxonomyBuilder::MAX_LEVELS`] levels.
    TooDeep {
        /// Name of the offending node.
        name: String,
    },
    /// `from_edges` was given a parent index that does not exist.
    DanglingParent {
        /// Index of the child with the bad reference.
        child: usize,
        /// The nonexistent parent index it referenced.
        parent: usize,
    },
    /// `from_edges` was given edges that form a cycle.
    Cycle {
        /// A node on the cycle.
        node: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::TooManyNodes => write!(f, "taxonomy exceeds u32::MAX nodes"),
            BuildError::TooDeep { name } => {
                write!(f, "node {name:?} exceeds the maximum supported depth")
            }
            BuildError::DanglingParent { child, parent } => {
                write!(f, "node {child} references nonexistent parent {parent}")
            }
            BuildError::Cycle { node } => write!(f, "parent edges form a cycle through node {node}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Taxonomy`] one node at a time.
///
/// Because children can only be attached to already-created nodes, cycles
/// are impossible by construction; [`TaxonomyBuilder::from_edges`] accepts
/// arbitrary parent arrays (e.g. from deserialization) and performs full
/// cycle detection instead.
#[derive(Debug, Clone)]
pub struct TaxonomyBuilder {
    label: String,
    name_buf: String,
    name_spans: Vec<(u32, u32)>,
    parent: Vec<u32>,
    level: Vec<u8>,
    child_count: Vec<u32>,
    roots: Vec<NodeId>,
    deep_error: Option<BuildError>,
}

impl TaxonomyBuilder {
    /// Deepest supported taxonomy (NCBI, the deepest in the paper, has 7).
    pub const MAX_LEVELS: usize = 64;

    /// Start building a taxonomy with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        TaxonomyBuilder {
            label: label.into(),
            name_buf: String::new(),
            name_spans: Vec::new(),
            parent: Vec::new(),
            level: Vec::new(),
            child_count: Vec::new(),
            roots: Vec::new(),
            deep_error: None,
        }
    }

    /// Pre-allocate space for `n` nodes with about `avg_name` bytes of
    /// name each. Purely an optimization for large synthetic forests.
    pub fn with_capacity(label: impl Into<String>, n: usize, avg_name: usize) -> Self {
        let mut b = Self::new(label);
        b.name_buf.reserve(n * avg_name);
        b.name_spans.reserve(n);
        b.parent.reserve(n);
        b.level.reserve(n);
        b.child_count.reserve(n);
        b
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no nodes have been added yet.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Name of a node already added to this builder. Useful for
    /// generators that derive child names from the parent's.
    pub fn name_of(&self, id: NodeId) -> &str {
        let (start, end) = self.name_spans[id.index()];
        &self.name_buf[start as usize..end as usize]
    }

    /// Level of a node already added to this builder.
    pub fn level_of(&self, id: NodeId) -> usize {
        self.level[id.index()] as usize
    }

    fn push_name(&mut self, name: &str) {
        let start = self.name_buf.len() as u32;
        self.name_buf.push_str(name);
        self.name_spans.push((start, self.name_buf.len() as u32));
    }

    /// Add a new tree root. Panics if the u32 index space overflows.
    pub fn add_root(&mut self, name: &str) -> NodeId {
        let id = NodeId(u32::try_from(self.parent.len()).expect("taxonomy exceeds u32::MAX nodes"));
        self.push_name(name);
        self.parent.push(NO_PARENT);
        self.level.push(0);
        self.child_count.push(0);
        self.roots.push(id);
        id
    }

    /// Reserve room for `nodes` more nodes carrying `name_bytes` more
    /// bytes of name data in total. One call per production batch keeps
    /// the arena columns at a single `reserve` each instead of paying
    /// amortized-growth copies mid-splice.
    pub fn reserve(&mut self, nodes: usize, name_bytes: usize) {
        self.name_buf.reserve(name_bytes);
        self.name_spans.reserve(nodes);
        self.parent.reserve(nodes);
        self.level.reserve(nodes);
        self.child_count.reserve(nodes);
    }

    /// Append every name yielded by `names` as a child of `parent`, in
    /// iterator order. Returns the id range of the new children (ids are
    /// assigned consecutively). Combined with [`TaxonomyBuilder::reserve`]
    /// this is the bulk path the chunked generator splices batches
    /// through: one capacity check per batch, then straight appends.
    ///
    /// Panics if `parent` was not issued by this builder or the u32 index
    /// space overflows, exactly like [`TaxonomyBuilder::add_child`].
    pub fn extend_children<'a>(
        &mut self,
        parent: NodeId,
        names: impl Iterator<Item = &'a str>,
    ) -> std::ops::Range<u32> {
        let start = u32::try_from(self.parent.len()).expect("taxonomy exceeds u32::MAX nodes");
        let plevel = self.level[parent.index()] as usize;
        let mut added = 0u32;
        for name in names {
            if plevel + 1 >= Self::MAX_LEVELS && self.deep_error.is_none() {
                self.deep_error = Some(BuildError::TooDeep { name: name.to_owned() });
            }
            self.push_name(name);
            self.parent.push(parent.raw());
            self.level.push((plevel + 1).min(u8::MAX as usize) as u8);
            self.child_count.push(0);
            added += 1;
        }
        self.child_count[parent.index()] += added;
        let end = start + added;
        assert!(
            (end as usize) == self.parent.len(),
            "extend_children id range must match arena length"
        );
        start..end
    }

    /// Splice one whole production run: for the `i`-th parent in the
    /// contiguous id range `parents` (all at the same level), attach
    /// `counts[i]` children whose names are the next `counts[i]` entries
    /// of `spans` (byte ranges into `names`), in order. This is the bulk
    /// path level-at-a-time generators use: the name block lands with a
    /// single `push_str`, spans are rebased in one pass, the level
    /// column is filled with a single resize, and the parent column is
    /// filled run-by-run — no per-name calls.
    ///
    /// Returns the id range of the new children. Panics if any parent id
    /// is out of range, if the parents do not all share one level, if
    /// `spans`/`counts` disagree, or if the u32 index space overflows —
    /// the same contract as calling
    /// [`TaxonomyBuilder::extend_children`] once per parent.
    pub fn extend_level(
        &mut self,
        parents: std::ops::Range<u32>,
        counts: &[u32],
        names: &str,
        spans: &[(u32, u32)],
    ) -> std::ops::Range<u32> {
        assert_eq!(parents.len(), counts.len(), "one child count per parent");
        assert!(parents.end as usize <= self.parent.len(), "parent ids out of range");
        let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        assert_eq!(total as usize, spans.len(), "span count must match the child total");
        let start = u32::try_from(self.parent.len()).expect("taxonomy exceeds u32::MAX nodes");
        let end = u32::try_from(self.parent.len() as u64 + total)
            .expect("taxonomy exceeds u32::MAX nodes");

        let base = self.name_buf.len() as u32;
        self.name_buf.push_str(names);
        self.name_spans.extend(spans.iter().map(|&(s, e)| (base + s, base + e)));

        if total > 0 {
            let plevel = self.level[parents.start as usize] as usize;
            assert!(
                parents.clone().all(|p| self.level[p as usize] as usize == plevel),
                "extend_level parents must share one level"
            );
            if plevel + 1 >= Self::MAX_LEVELS && self.deep_error.is_none() {
                let (s, e) = spans[0];
                self.deep_error =
                    Some(BuildError::TooDeep { name: names[s as usize..e as usize].to_owned() });
            }
            self.level.resize(end as usize, (plevel + 1).min(u8::MAX as usize) as u8);
        }
        for (p, &c) in parents.zip(counts) {
            if c == 0 {
                continue;
            }
            self.parent.resize(self.parent.len() + c as usize, p);
            self.child_count[p as usize] += c;
        }
        self.child_count.resize(self.parent.len(), 0);
        debug_assert_eq!(self.parent.len(), end as usize);
        start..end
    }

    /// Add a child under `parent`. Panics if `parent` was not issued by
    /// this builder.
    pub fn add_child(&mut self, parent: NodeId, name: &str) -> NodeId {
        let plevel = self.level[parent.index()] as usize;
        if plevel + 1 >= Self::MAX_LEVELS && self.deep_error.is_none() {
            self.deep_error = Some(BuildError::TooDeep { name: name.to_owned() });
        }
        let id = NodeId(u32::try_from(self.parent.len()).expect("taxonomy exceeds u32::MAX nodes"));
        self.push_name(name);
        self.parent.push(parent.raw());
        self.level.push((plevel + 1).min(u8::MAX as usize) as u8);
        self.child_count.push(0);
        self.child_count[parent.index()] += 1;
        id
    }

    /// Finish, producing the immutable taxonomy.
    pub fn build(self) -> Result<Taxonomy, BuildError> {
        if let Some(e) = self.deep_error {
            return Err(e);
        }
        let n = self.parent.len();

        // CSR child lists: prefix-sum the counts, then scatter.
        let mut child_off = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        child_off.push(0);
        for &c in &self.child_count {
            acc += c;
            child_off.push(acc);
        }
        let mut cursor = child_off.clone();
        let mut child_list = vec![NodeId(0); acc as usize];
        for i in 0..n {
            let p = self.parent[i];
            if p != NO_PARENT {
                let slot = cursor[p as usize];
                child_list[slot as usize] = NodeId(i as u32);
                cursor[p as usize] += 1;
            }
        }

        // Per-level index, exact-sized: count first so the per-level
        // vectors never reallocate while 2M+ ids stream in.
        let depth = self.level.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        let mut level_counts = vec![0usize; depth];
        for &l in &self.level {
            level_counts[l as usize] += 1;
        }
        let mut by_level: Vec<Vec<NodeId>> =
            level_counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for i in 0..n {
            by_level[self.level[i] as usize].push(NodeId(i as u32));
        }

        Ok(Taxonomy {
            label: self.label,
            name_buf: self.name_buf,
            name_spans: self.name_spans,
            parent: self.parent,
            level: self.level,
            child_off,
            child_list,
            roots: self.roots,
            by_level,
        })
    }

    /// Build a taxonomy from parallel `names` / `parents` arrays, where
    /// `parents[i]` is the index of node `i`'s parent or `None` for roots.
    ///
    /// Unlike the incremental API this accepts forward references and
    /// therefore performs explicit dangling-parent and cycle detection.
    pub fn from_edges(
        label: impl Into<String>,
        names: &[String],
        parents: &[Option<usize>],
    ) -> Result<Taxonomy, BuildError> {
        assert_eq!(names.len(), parents.len(), "names/parents length mismatch");
        let n = names.len();
        if n > u32::MAX as usize {
            return Err(BuildError::TooManyNodes);
        }
        for (child, p) in parents.iter().enumerate() {
            if let Some(p) = *p {
                if p >= n {
                    return Err(BuildError::DanglingParent { child, parent: p });
                }
            }
        }

        // Compute levels by chasing parents, memoized (0 = unknown,
        // otherwise level + 1). Cycle detection uses an epoch stamp per
        // walk so the whole pass is O(n).
        let mut level_memo = vec![0u32; n];
        let mut visit_epoch = vec![0u32; n];
        let mut path = Vec::new();
        for start in 0..n {
            if level_memo[start] != 0 {
                continue;
            }
            let epoch = start as u32 + 1;
            path.clear();
            let mut cur = start;
            // Walk up until a memoized node or a root; `base` is the memo
            // value (level + 1) of the first node *below* which we assign.
            let mut base = loop {
                if level_memo[cur] != 0 {
                    break level_memo[cur];
                }
                if visit_epoch[cur] == epoch {
                    return Err(BuildError::Cycle { node: cur });
                }
                visit_epoch[cur] = epoch;
                path.push(cur);
                match parents[cur] {
                    Some(p) => cur = p,
                    None => {
                        // `cur` (== last path element) is a root: memoize
                        // it now and let the walk-back start above it.
                        let root = path.pop().expect("root was just pushed");
                        level_memo[root] = 1;
                        break 1;
                    }
                }
            };
            // Assign levels top-down along the collected path.
            for &node in path.iter().rev() {
                base += 1;
                level_memo[node] = base;
            }
        }

        let max_level = level_memo.iter().map(|&l| l - 1).max().unwrap_or(0) as usize;
        if n > 0 && max_level >= Self::MAX_LEVELS {
            return Err(BuildError::TooDeep {
                name: names
                    .iter()
                    .zip(&level_memo)
                    .find(|(_, &l)| (l - 1) as usize >= Self::MAX_LEVELS)
                    .map(|(nm, _)| nm.clone())
                    .unwrap_or_default(),
            });
        }

        let mut b = TaxonomyBuilder::with_capacity(label, n, 16);
        // Insert in level order so parents always precede children; keep a
        // mapping old index -> new NodeId.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (level_memo[i], i));
        let mut remap = vec![NodeId(0); n];
        for &i in &order {
            remap[i] = match parents[i] {
                None => b.add_root(&names[i]),
                Some(p) => b.add_child(remap[p], &names[i]),
            };
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_matches_incremental() {
        let names: Vec<String> = ["b", "root", "a"].iter().map(|s| s.to_string()).collect();
        // b's parent is a, a's parent is root; given out of order.
        let parents = vec![Some(2), None, Some(1)];
        let t = TaxonomyBuilder::from_edges("t", &names, &parents).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.num_levels(), 3);
        let root = t.roots()[0];
        assert_eq!(t.name(root), "root");
        let a = t.children(root)[0];
        assert_eq!(t.name(a), "a");
        let b = t.children(a)[0];
        assert_eq!(t.name(b), "b");
    }

    #[test]
    fn from_edges_detects_cycles() {
        let names: Vec<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        let parents = vec![Some(1), Some(0)];
        let err = TaxonomyBuilder::from_edges("t", &names, &parents).unwrap_err();
        assert!(matches!(err, BuildError::Cycle { .. }));
    }

    #[test]
    fn from_edges_detects_self_loop() {
        let names = vec!["x".to_string()];
        let parents = vec![Some(0)];
        let err = TaxonomyBuilder::from_edges("t", &names, &parents).unwrap_err();
        assert!(matches!(err, BuildError::Cycle { node: 0 }));
    }

    #[test]
    fn from_edges_detects_dangling_parent() {
        let names = vec!["x".to_string()];
        let parents = vec![Some(5)];
        let err = TaxonomyBuilder::from_edges("t", &names, &parents).unwrap_err();
        assert_eq!(err, BuildError::DanglingParent { child: 0, parent: 5 });
    }

    #[test]
    fn from_edges_empty() {
        let t = TaxonomyBuilder::from_edges("t", &[], &[]).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn from_edges_multi_tree() {
        let names: Vec<String> = ["r1", "r2", "c1", "c2"].iter().map(|s| s.to_string()).collect();
        let parents = vec![None, None, Some(0), Some(1)];
        let t = TaxonomyBuilder::from_edges("t", &names, &parents).unwrap();
        assert_eq!(t.roots().len(), 2);
        assert_eq!(t.nodes_at_level(1).len(), 2);
    }

    #[test]
    fn builder_capacity_path() {
        let mut b = TaxonomyBuilder::with_capacity("big", 100, 8);
        let r = b.add_root("r");
        for i in 0..99 {
            b.add_child(r, &format!("c{i}"));
        }
        assert_eq!(b.len(), 100);
        let t = b.build().unwrap();
        assert_eq!(t.children(r).len(), 99);
    }
}
