//! Name lookup indexes.
//!
//! Taxonomies are queried by name constantly (entity search, hybrid
//! routing, instance attachment), so this module provides a prebuilt
//! index: exact (case-sensitive and -insensitive) lookup plus
//! lexicographic prefix scans. Names are not globally unique in real
//! taxonomies (e.g. "Accessories" under many Amazon departments), so
//! lookups return every match.

use crate::arena::Taxonomy;
use crate::node::NodeId;

/// A prebuilt name index over one taxonomy.
///
/// Invalidation: the index borrows nothing but is only meaningful for
/// the taxonomy it was built from; rebuilding after edits is the
/// caller's job (edits produce new taxonomies anyway).
#[derive(Debug, Clone)]
pub struct NameIndex {
    /// `(lowercased name, id)` sorted by name then id.
    entries: Vec<(String, NodeId)>,
}

impl NameIndex {
    /// Build the index (O(n log n)).
    pub fn build(taxonomy: &Taxonomy) -> Self {
        let mut entries: Vec<(String, NodeId)> = taxonomy
            .ids()
            .map(|id| (taxonomy.name(id).to_ascii_lowercase(), id))
            .collect();
        entries.sort();
        NameIndex { entries }
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All nodes whose name equals `name` (case-insensitive).
    pub fn lookup(&self, name: &str) -> Vec<NodeId> {
        let key = name.to_ascii_lowercase();
        let start = self.entries.partition_point(|(n, _)| n.as_str() < key.as_str());
        self.entries[start..]
            .iter()
            .take_while(|(n, _)| *n == key)
            .map(|&(_, id)| id)
            .collect()
    }

    /// The unique node named `name`, if exactly one exists.
    pub fn lookup_unique(&self, name: &str) -> Option<NodeId> {
        let matches = self.lookup(name);
        match matches.as_slice() {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// All nodes whose name starts with `prefix` (case-insensitive), in
    /// name order, capped at `limit`.
    pub fn prefix(&self, prefix: &str, limit: usize) -> Vec<NodeId> {
        let key = prefix.to_ascii_lowercase();
        let start = self.entries.partition_point(|(n, _)| n.as_str() < key.as_str());
        self.entries[start..]
            .iter()
            .take_while(|(n, _)| n.starts_with(&key))
            .take(limit)
            .map(|&(_, id)| id)
            .collect()
    }

    /// Case-insensitive containment scan (O(n) — for interactive search
    /// over mid-size taxonomies; use [`NameIndex::prefix`] on hot paths).
    pub fn containing(&self, needle: &str, limit: usize) -> Vec<NodeId> {
        let key = needle.to_ascii_lowercase();
        self.entries
            .iter()
            .filter(|(n, _)| n.contains(&key))
            .take(limit)
            .map(|&(_, id)| id)
            .collect()
    }
}

impl Taxonomy {
    /// Build a [`NameIndex`] for this taxonomy.
    pub fn name_index(&self) -> NameIndex {
        NameIndex::build(self)
    }

    /// Linear-scan lookup of the first node with this exact name
    /// (case-sensitive). Prefer [`NameIndex`] for repeated lookups.
    pub fn find_by_name(&self, name: &str) -> Option<NodeId> {
        self.ids().find(|&id| self.name(id) == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    fn sample() -> Taxonomy {
        let mut b = TaxonomyBuilder::new("t");
        let r = b.add_root("Electronics");
        let audio = b.add_child(r, "Audio");
        b.add_child(audio, "Speakers");
        b.add_child(audio, "Headphones");
        let video = b.add_child(r, "Video");
        b.add_child(video, "Speakers"); // duplicate name, different parent
        b.build().unwrap()
    }

    #[test]
    fn exact_lookup_finds_all_matches() {
        let t = sample();
        let idx = t.name_index();
        assert_eq!(idx.len(), 6);
        let speakers = idx.lookup("Speakers");
        assert_eq!(speakers.len(), 2);
        for id in speakers {
            assert_eq!(t.name(id), "Speakers");
        }
        assert_eq!(idx.lookup("speakers").len(), 2, "case-insensitive");
        assert!(idx.lookup("Projectors").is_empty());
    }

    #[test]
    fn unique_lookup() {
        let t = sample();
        let idx = t.name_index();
        assert!(idx.lookup_unique("Audio").is_some());
        assert!(idx.lookup_unique("Speakers").is_none(), "ambiguous");
        assert!(idx.lookup_unique("Nothing").is_none());
    }

    #[test]
    fn prefix_scan() {
        let t = sample();
        let idx = t.name_index();
        let hits = idx.prefix("sp", 10);
        assert_eq!(hits.len(), 2);
        let capped = idx.prefix("", 3);
        assert_eq!(capped.len(), 3, "empty prefix matches everything, capped");
        assert!(idx.prefix("zz", 10).is_empty());
    }

    #[test]
    fn containment_scan() {
        let t = sample();
        let idx = t.name_index();
        let hits = idx.containing("phone", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(t.name(hits[0]), "Headphones");
    }

    #[test]
    fn find_by_name_is_case_sensitive() {
        let t = sample();
        assert!(t.find_by_name("Audio").is_some());
        assert!(t.find_by_name("audio").is_none());
    }

    #[test]
    fn empty_taxonomy_index() {
        let t = TaxonomyBuilder::new("e").build().unwrap();
        let idx = t.name_index();
        assert!(idx.is_empty());
        assert!(idx.lookup("x").is_empty());
        assert!(idx.prefix("x", 5).is_empty());
    }
}
