//! Node identifiers.

use std::fmt;
use taxoglimpse_json::{FromJson, Json, JsonError, ToJson};

/// Index of a node inside a [`crate::Taxonomy`] arena.
///
/// A `NodeId` is only meaningful relative to the taxonomy that issued it.
/// Using an id from one taxonomy against another is a logic error; the
/// accessors will panic on out-of-range ids rather than silently return
/// wrong data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl ToJson for NodeId {
    /// Transparent: a `NodeId` serializes as its bare raw index.
    fn to_json(&self) -> Json {
        Json::U64(u64::from(self.0))
    }
}

impl FromJson for NodeId {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        u32::from_json(json).map(NodeId)
    }
}

impl NodeId {
    /// Construct a `NodeId` from a raw index.
    ///
    /// Intended for deserialization and test fixtures; ordinary code gets
    /// ids from the builder or taxonomy queries.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw arena index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The raw index widened to `usize` for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trip() {
        let id = NodeId::from_raw(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::from_raw(7).to_string(), "n7");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(NodeId::from_raw(1) < NodeId::from_raw(2));
    }

    #[test]
    fn json_is_transparent() {
        let id = NodeId::from_raw(9);
        let json = taxoglimpse_json::to_string(&id).unwrap();
        assert_eq!(json, "9");
        let back: NodeId = taxoglimpse_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
