//! Structural diffs between taxonomy releases.
//!
//! Real taxonomies evolve (the paper pins Glottolog v4.8, Schema.org
//! v26.0, NCBI Sep-2023 precisely because releases differ), and the
//! §5.3 cost argument is about *maintenance*. [`diff`] compares two
//! releases by full name paths, classifying nodes as added, removed, or
//! moved, which is what a maintenance-cost model needs.

use crate::arena::Taxonomy;
use crate::node::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// The difference between two taxonomy releases.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaxonomyDiff {
    /// Full paths present only in the new release.
    pub added: Vec<String>,
    /// Full paths present only in the old release.
    pub removed: Vec<String>,
    /// Nodes (unique names in both releases) whose parent path changed:
    /// `(name, old parent path, new parent path)`.
    pub moved: Vec<(String, String, String)>,
}

impl TaxonomyDiff {
    /// Total number of edit operations.
    pub fn total_changes(&self) -> usize {
        self.added.len() + self.removed.len() + self.moved.len()
    }

    /// Whether the releases are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.total_changes() == 0
    }

    /// Changes whose path depth is at least `level` (used to account
    /// maintenance that a hybrid taxonomy's replaced levels absorb).
    pub fn changes_at_or_below(&self, level: usize) -> usize {
        let depth = |path: &str| path.matches(" > ").count();
        self.added.iter().filter(|p| depth(p) >= level).count()
            + self.removed.iter().filter(|p| depth(p) >= level).count()
            + self
                .moved
                .iter()
                .filter(|(_, _, new_parent)| depth(new_parent) + 1 >= level)
                .count()
    }
}

/// The full `root > … > node` path of `id`.
pub fn path_of(taxonomy: &Taxonomy, id: NodeId) -> String {
    let chain = taxonomy.chain_from_root(id);
    chain
        .iter()
        .map(|&n| taxonomy.name(n))
        .collect::<Vec<_>>()
        .join(" > ")
}

/// Compare two releases.
pub fn diff(old: &Taxonomy, new: &Taxonomy) -> TaxonomyDiff {
    // Ordered containers keep every derived list sorted for free, so
    // the diff is deterministic without post-hoc sorting (D001).
    let old_paths: BTreeSet<String> = old.ids().map(|id| path_of(old, id)).collect();
    let new_paths: BTreeSet<String> = new.ids().map(|id| path_of(new, id)).collect();

    // Unique-name parent maps for move detection.
    let parent_map = |t: &Taxonomy| -> BTreeMap<String, Option<String>> {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for id in t.ids() {
            *counts.entry(t.name(id)).or_default() += 1;
        }
        t.ids()
            .filter(|&id| counts[t.name(id)] == 1)
            .map(|id| {
                (
                    t.name(id).to_owned(),
                    t.parent(id).map(|p| path_of(t, p)),
                )
            })
            .collect()
    };
    let old_parents = parent_map(old);
    let new_parents = parent_map(new);

    // Iterating the BTreeMap yields names in order, and names are
    // unique keys, so `moved` comes out already sorted.
    let mut moved = Vec::new();
    for (name, old_parent) in &old_parents {
        if let Some(new_parent) = new_parents.get(name) {
            if old_parent != new_parent {
                moved.push((
                    name.clone(),
                    old_parent.clone().unwrap_or_default(),
                    new_parent.clone().unwrap_or_default(),
                ));
            }
        }
    }
    let moved_names: BTreeSet<&str> = moved.iter().map(|(n, _, _)| n.as_str()).collect();

    // Added/removed by path, excluding paths explained by a move (the
    // moved node itself or any descendant of a moved node).
    let path_is_move_artifact = |path: &str| {
        path.split(" > ").any(|segment| moved_names.contains(segment))
    };
    // `BTreeSet::difference` iterates in ascending order, so `added`
    // and `removed` are sorted by construction.
    let added: Vec<String> = new_paths
        .difference(&old_paths)
        .filter(|p| !path_is_move_artifact(p))
        .cloned()
        .collect();
    let removed: Vec<String> = old_paths
        .difference(&new_paths)
        .filter(|p| !path_is_move_artifact(p))
        .cloned()
        .collect();

    TaxonomyDiff { added, removed, moved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    fn base() -> Taxonomy {
        let mut b = TaxonomyBuilder::new("v1");
        let r = b.add_root("Root");
        let a = b.add_child(r, "Alpha");
        b.add_child(a, "Alpha-1");
        b.add_child(r, "Beta");
        b.build().unwrap()
    }

    #[test]
    fn identical_releases_diff_empty() {
        let d = diff(&base(), &base());
        assert!(d.is_empty());
        assert_eq!(d.total_changes(), 0);
    }

    #[test]
    fn additions_and_removals() {
        let old = base();
        let mut b = TaxonomyBuilder::new("v2");
        let r = b.add_root("Root");
        let a = b.add_child(r, "Alpha");
        b.add_child(a, "Alpha-1");
        b.add_child(a, "Alpha-2"); // added
        // "Beta" removed
        let new = b.build().unwrap();
        let d = diff(&old, &new);
        assert_eq!(d.added, vec!["Root > Alpha > Alpha-2".to_owned()]);
        assert_eq!(d.removed, vec!["Root > Beta".to_owned()]);
        assert!(d.moved.is_empty());
    }

    #[test]
    fn moves_are_detected_not_double_counted() {
        let old = base();
        let mut b = TaxonomyBuilder::new("v2");
        let r = b.add_root("Root");
        let a = b.add_child(r, "Alpha");
        let beta = b.add_child(r, "Beta");
        b.add_child(beta, "Alpha-1"); // moved from Alpha to Beta
        let _ = a;
        let new = b.build().unwrap();
        let d = diff(&old, &new);
        assert_eq!(d.moved.len(), 1);
        let (name, from, to) = &d.moved[0];
        assert_eq!(name, "Alpha-1");
        assert_eq!(from, "Root > Alpha");
        assert_eq!(to, "Root > Beta");
        // The move's old/new paths must not also appear as add/remove.
        assert!(d.added.is_empty(), "{:?}", d.added);
        assert!(d.removed.is_empty(), "{:?}", d.removed);
    }

    #[test]
    fn changes_at_or_below_filters_by_depth() {
        let old = base();
        let mut b = TaxonomyBuilder::new("v2");
        let r = b.add_root("Root");
        let a = b.add_child(r, "Alpha");
        b.add_child(a, "Alpha-1");
        b.add_child(a, "Deep-new"); // depth 2
        b.add_child(r, "Beta");
        b.add_child(r, "Shallow-new"); // depth 1
        let new = b.build().unwrap();
        let d = diff(&old, &new);
        assert_eq!(d.total_changes(), 2);
        assert_eq!(d.changes_at_or_below(2), 1, "only the deep addition");
        assert_eq!(d.changes_at_or_below(0), 2);
    }

    #[test]
    fn duplicate_names_do_not_confuse_move_detection() {
        // "Twin" exists under two parents in both releases; it must not
        // be reported as moved.
        let mk = |label: &str, swap: bool| {
            let mut b = TaxonomyBuilder::new(label);
            let r = b.add_root("Root");
            let a = b.add_child(r, "A");
            let c = b.add_child(r, "C");
            if swap {
                b.add_child(c, "Twin");
                b.add_child(a, "Twin");
            } else {
                b.add_child(a, "Twin");
                b.add_child(c, "Twin");
            }
            b.build().unwrap()
        };
        let d = diff(&mk("v1", false), &mk("v2", true));
        assert!(d.moved.is_empty());
        assert!(d.is_empty(), "{d:?}");
    }
}
