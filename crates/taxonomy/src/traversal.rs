//! Forest traversal iterators.

use crate::arena::Taxonomy;
use crate::node::NodeId;
use std::collections::VecDeque;

/// Depth-first (pre-order) traversal of the subtree rooted at a node.
pub struct Descendants<'t> {
    taxonomy: &'t Taxonomy,
    stack: Vec<NodeId>,
}

impl<'t> Iterator for Descendants<'t> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.stack.pop()?;
        // Push children reversed so iteration visits them left-to-right.
        for &c in self.taxonomy.children(cur).iter().rev() {
            self.stack.push(c);
        }
        Some(cur)
    }
}

/// Breadth-first traversal of the whole forest.
pub struct BreadthFirst<'t> {
    taxonomy: &'t Taxonomy,
    queue: VecDeque<NodeId>,
}

impl<'t> Iterator for BreadthFirst<'t> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.queue.pop_front()?;
        self.queue.extend(self.taxonomy.children(cur).iter().copied());
        Some(cur)
    }
}

impl Taxonomy {
    /// Pre-order iterator over `id` and all of its descendants.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants { taxonomy: self, stack: vec![id] }
    }

    /// Pre-order iterator over the *strict* descendants of `id`.
    pub fn strict_descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants(id).skip(1)
    }

    /// Breadth-first iterator over the whole forest (all trees, level by
    /// level within each BFS frontier).
    pub fn breadth_first(&self) -> BreadthFirst<'_> {
        BreadthFirst { taxonomy: self, queue: self.roots().iter().copied().collect() }
    }

    /// The leaves of the subtree rooted at `id`.
    pub fn leaves_under(&self, id: NodeId) -> Vec<NodeId> {
        self.descendants(id).filter(|&d| self.is_leaf(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::TaxonomyBuilder;

    #[test]
    fn descendants_preorder() {
        let mut b = TaxonomyBuilder::new("t");
        let r = b.add_root("r");
        let a = b.add_child(r, "a");
        let b1 = b.add_child(a, "b1");
        let b2 = b.add_child(a, "b2");
        let c = b.add_child(r, "c");
        let t = b.build().unwrap();
        let order: Vec<_> = t.descendants(r).collect();
        assert_eq!(order, vec![r, a, b1, b2, c]);
        let strict: Vec<_> = t.strict_descendants(r).collect();
        assert_eq!(strict, vec![a, b1, b2, c]);
    }

    #[test]
    fn breadth_first_visits_all_levelwise() {
        let mut b = TaxonomyBuilder::new("t");
        let r1 = b.add_root("r1");
        let r2 = b.add_root("r2");
        let a = b.add_child(r1, "a");
        let bb = b.add_child(r2, "b");
        let c = b.add_child(a, "c");
        let t = b.build().unwrap();
        let order: Vec<_> = t.breadth_first().collect();
        assert_eq!(order, vec![r1, r2, a, bb, c]);
    }

    #[test]
    fn leaves_under() {
        let mut b = TaxonomyBuilder::new("t");
        let r = b.add_root("r");
        let a = b.add_child(r, "a");
        let l1 = b.add_child(a, "l1");
        let l2 = b.add_child(r, "l2");
        let t = b.build().unwrap();
        assert_eq!(t.leaves_under(r), vec![l1, l2]);
        assert_eq!(t.leaves_under(l1), vec![l1]);
    }

    #[test]
    fn traversal_counts_match_len() {
        let mut b = TaxonomyBuilder::new("t");
        let mut parents = vec![b.add_root("r")];
        for i in 0..50 {
            let p = parents[i % parents.len()];
            parents.push(b.add_child(p, &format!("n{i}")));
        }
        let t = b.build().unwrap();
        assert_eq!(t.breadth_first().count(), t.len());
        assert_eq!(t.descendants(t.roots()[0]).count(), t.len());
    }
}
