//! Whole-forest statistics — the columns of the paper's Table 1.

use crate::arena::Taxonomy;
use std::fmt;
use taxoglimpse_json::{FromJson, Json, JsonError, ToJson};

/// Summary statistics for a taxonomy, mirroring Table 1 of the paper:
/// number of entities, number of levels, number of trees, and the number
/// of nodes in each level.
#[derive(Debug, Clone, PartialEq)]
pub struct TaxonomyStats {
    /// Taxonomy label.
    pub label: String,
    /// Total entity count (`# of entities`).
    pub num_entities: usize,
    /// Depth (`# of levels`).
    pub num_levels: usize,
    /// Number of tree roots (`# of trees`).
    pub num_trees: usize,
    /// Node count per level starting at the root level
    /// (`# of nodes and classes in each level`).
    pub nodes_per_level: Vec<usize>,
    /// Number of leaf nodes (not in Table 1, useful for instance typing).
    pub num_leaves: usize,
    /// Maximum branching factor observed.
    pub max_children: usize,
    /// Mean branching factor over internal (non-leaf) nodes.
    pub mean_children_of_internal: f64,
}

impl TaxonomyStats {
    /// Compute statistics for `t`.
    pub fn compute(t: &Taxonomy) -> Self {
        let num_levels = t.num_levels();
        let nodes_per_level = (0..num_levels).map(|l| t.nodes_at_level(l).len()).collect();
        let mut num_leaves = 0usize;
        let mut max_children = 0usize;
        let mut internal = 0usize;
        let mut internal_children = 0usize;
        for id in t.ids() {
            let c = t.children(id).len();
            if c == 0 {
                num_leaves += 1;
            } else {
                internal += 1;
                internal_children += c;
                max_children = max_children.max(c);
            }
        }
        TaxonomyStats {
            label: t.label().to_owned(),
            num_entities: t.len(),
            num_levels,
            num_trees: t.roots().len(),
            nodes_per_level,
            num_leaves,
            max_children,
            mean_children_of_internal: if internal == 0 {
                0.0
            } else {
                internal_children as f64 / internal as f64
            },
        }
    }

    /// The `a-b-c` shape string used by Table 1 (e.g. `13-110-472`).
    pub fn shape_string(&self) -> String {
        self.nodes_per_level
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join("-")
    }
}

impl fmt::Display for TaxonomyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} entities, {} levels, {} trees, shape {}",
            self.label,
            self.num_entities,
            self.num_levels,
            self.num_trees,
            self.shape_string()
        )
    }
}

impl ToJson for TaxonomyStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.to_json()),
            ("num_entities", self.num_entities.to_json()),
            ("num_levels", self.num_levels.to_json()),
            ("num_trees", self.num_trees.to_json()),
            ("nodes_per_level", self.nodes_per_level.to_json()),
            ("num_leaves", self.num_leaves.to_json()),
            ("max_children", self.max_children.to_json()),
            ("mean_children_of_internal", self.mean_children_of_internal.to_json()),
        ])
    }
}

impl FromJson for TaxonomyStats {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(TaxonomyStats {
            label: json.field_as("label")?,
            num_entities: json.field_as("num_entities")?,
            num_levels: json.field_as("num_levels")?,
            num_trees: json.field_as("num_trees")?,
            nodes_per_level: json.field_as("nodes_per_level")?,
            num_leaves: json.field_as("num_leaves")?,
            max_children: json.field_as("max_children")?,
            mean_children_of_internal: json.field_as("mean_children_of_internal")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    #[test]
    fn stats_on_small_forest() {
        let mut b = TaxonomyBuilder::new("t");
        let r1 = b.add_root("r1");
        let _r2 = b.add_root("r2");
        let a = b.add_child(r1, "a");
        b.add_child(r1, "b");
        b.add_child(a, "c");
        let t = b.build().unwrap();
        let s = TaxonomyStats::compute(&t);
        assert_eq!(s.num_entities, 5);
        assert_eq!(s.num_levels, 3);
        assert_eq!(s.num_trees, 2);
        assert_eq!(s.nodes_per_level, vec![2, 2, 1]);
        assert_eq!(s.num_leaves, 3);
        assert_eq!(s.max_children, 2);
        assert!((s.mean_children_of_internal - 1.5).abs() < 1e-12);
        assert_eq!(s.shape_string(), "2-2-1");
    }

    #[test]
    fn stats_on_empty() {
        let t = TaxonomyBuilder::new("e").build().unwrap();
        let s = TaxonomyStats::compute(&t);
        assert_eq!(s.num_entities, 0);
        assert_eq!(s.num_levels, 0);
        assert_eq!(s.shape_string(), "");
        assert_eq!(s.mean_children_of_internal, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let mut b = TaxonomyBuilder::new("demo");
        let r = b.add_root("r");
        b.add_child(r, "a");
        let t = b.build().unwrap();
        let rendered = TaxonomyStats::compute(&t).to_string();
        assert!(rendered.contains("demo"));
        assert!(rendered.contains("shape 1-1"));
    }

    #[test]
    fn json_round_trip() {
        let mut b = TaxonomyBuilder::new("t");
        let r = b.add_root("r");
        b.add_child(r, "a");
        let s = TaxonomyStats::compute(&b.build().unwrap());
        let json = taxoglimpse_json::to_string(&s).unwrap();
        let back: TaxonomyStats = taxoglimpse_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
