//! The arena-backed taxonomy structure.
//!
//! Storage is struct-of-arrays with a CSR (compressed sparse row) child
//! list and a single shared name buffer, so a full-fidelity NCBI-shaped
//! forest (2.19M nodes) fits comfortably in memory with one allocation
//! per column instead of one per node.

use crate::node::NodeId;

/// Sentinel parent index meaning "this node is a root".
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// An immutable Is-A forest.
///
/// Built via [`crate::TaxonomyBuilder`]; see the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    pub(crate) label: String,
    /// Concatenated node names.
    pub(crate) name_buf: String,
    /// Byte spans into `name_buf`, one per node.
    pub(crate) name_spans: Vec<(u32, u32)>,
    /// Parent index per node (`NO_PARENT` for roots).
    pub(crate) parent: Vec<u32>,
    /// Level per node (roots are 0).
    pub(crate) level: Vec<u8>,
    /// CSR offsets into `child_list`; `children of i` =
    /// `child_list[child_off[i]..child_off[i + 1]]`.
    pub(crate) child_off: Vec<u32>,
    pub(crate) child_list: Vec<NodeId>,
    /// Root nodes in insertion order.
    pub(crate) roots: Vec<NodeId>,
    /// Node ids grouped by level: `by_level[l]` lists every level-`l` node.
    pub(crate) by_level: Vec<Vec<NodeId>>,
}

impl Taxonomy {
    /// Human-readable label for this taxonomy (e.g. `"amazon"`).
    #[inline]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Total number of nodes in the forest.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Iterate over every node id in insertion order.
    #[inline]
    pub fn ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.parent.len() as u32).map(NodeId)
    }

    /// The display name of `id`.
    #[inline]
    pub fn name(&self, id: NodeId) -> &str {
        let (start, end) = self.name_spans[id.index()];
        &self.name_buf[start as usize..end as usize]
    }

    /// The parent of `id`, or `None` for a root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let p = self.parent[id.index()];
        (p != NO_PARENT).then_some(NodeId(p))
    }

    /// The children of `id` (empty slice for leaves).
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.child_list[self.child_off[i] as usize..self.child_off[i + 1] as usize]
    }

    /// The level of `id`; roots are level 0.
    #[inline]
    pub fn level(&self, id: NodeId) -> usize {
        self.level[id.index()] as usize
    }

    /// Whether `id` has no children.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.children(id).is_empty()
    }

    /// Root nodes (tree tops) in insertion order.
    #[inline]
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Number of distinct levels present (depth of the deepest node + 1).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.by_level.len()
    }

    /// All nodes at `level`, or an empty slice if the level does not exist.
    #[inline]
    pub fn nodes_at_level(&self, level: usize) -> &[NodeId] {
        self.by_level.get(level).map_or(&[], Vec::as_slice)
    }

    /// Ancestors of `id` from its parent up to (and including) its root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.level(id));
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// The root of the tree containing `id`.
    pub fn root_of(&self, id: NodeId) -> NodeId {
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            cur = p;
        }
        cur
    }

    /// The chain `[root, ..., id]` from the root down to `id`.
    pub fn chain_from_root(&self, id: NodeId) -> Vec<NodeId> {
        let mut chain = self.ancestors(id);
        chain.reverse();
        chain.push(id);
        chain
    }

    /// Siblings of `id`: other children of the same parent.
    ///
    /// For a root node the siblings are the *other roots*, matching the
    /// paper's negative sampling at level 1 (where the candidate parent
    /// pool is the root set).
    pub fn siblings(&self, id: NodeId) -> Vec<NodeId> {
        let pool: &[NodeId] = match self.parent(id) {
            Some(p) => self.children(p),
            None => &self.roots,
        };
        pool.iter().copied().filter(|&s| s != id).collect()
    }

    /// Uncles of `id`: siblings of its parent. These are the paper's hard
    /// negatives — entities similar to the true parent.
    ///
    /// Returns an empty vector for roots (no parent to take siblings of).
    pub fn uncles(&self, id: NodeId) -> Vec<NodeId> {
        match self.parent(id) {
            Some(p) => self.siblings(p),
            None => Vec::new(),
        }
    }

    /// All leaf node ids.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.ids().filter(|&id| self.is_leaf(id)).collect()
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        let mut n = 0;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            n += 1;
            stack.extend_from_slice(self.children(cur));
        }
        n
    }

    /// Whether `anc` is a strict ancestor of `id`.
    pub fn is_ancestor(&self, anc: NodeId, id: NodeId) -> bool {
        let target = self.level(anc);
        if target >= self.level(id) {
            return false;
        }
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            if p == anc {
                return true;
            }
            if self.level(p) <= target {
                return false;
            }
            cur = p;
        }
        false
    }

    /// Total bytes of name data stored (diagnostic).
    pub fn name_bytes(&self) -> usize {
        self.name_buf.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::TaxonomyBuilder;

    fn sample() -> (crate::Taxonomy, Vec<crate::NodeId>) {
        // r0          r1
        // ├── a       └── d
        // │   ├── b
        // │   └── c
        // └── e
        let mut b = TaxonomyBuilder::new("t");
        let r0 = b.add_root("r0");
        let r1 = b.add_root("r1");
        let a = b.add_child(r0, "a");
        let bb = b.add_child(a, "b");
        let c = b.add_child(a, "c");
        let d = b.add_child(r1, "d");
        let e = b.add_child(r0, "e");
        (b.build().unwrap(), vec![r0, r1, a, bb, c, d, e])
    }

    #[test]
    fn basic_shape() {
        let (t, ids) = sample();
        let [r0, r1, a, b, c, d, e] = ids[..] else { unreachable!() };
        assert_eq!(t.len(), 7);
        assert_eq!(t.roots(), &[r0, r1]);
        assert_eq!(t.num_levels(), 3);
        assert_eq!(t.children(r0), &[a, e]);
        assert_eq!(t.children(a), &[b, c]);
        assert_eq!(t.children(d), &[]);
        assert_eq!(t.level(b), 2);
        assert_eq!(t.parent(e), Some(r0));
        assert_eq!(t.parent(r1), None);
    }

    #[test]
    fn names_round_trip() {
        let (t, ids) = sample();
        assert_eq!(t.name(ids[0]), "r0");
        assert_eq!(t.name(ids[4]), "c");
        assert_eq!(t.name(ids[6]), "e");
    }

    #[test]
    fn ancestors_and_chain() {
        let (t, ids) = sample();
        let [r0, _, a, b, ..] = ids[..] else { unreachable!() };
        assert_eq!(t.ancestors(b), vec![a, r0]);
        assert_eq!(t.chain_from_root(b), vec![r0, a, b]);
        assert_eq!(t.ancestors(r0), vec![]);
        assert_eq!(t.root_of(b), r0);
        assert_eq!(t.root_of(r0), r0);
    }

    #[test]
    fn siblings_and_uncles() {
        let (t, ids) = sample();
        let [r0, r1, a, b, c, _, e] = ids[..] else { unreachable!() };
        assert_eq!(t.siblings(b), vec![c]);
        assert_eq!(t.siblings(a), vec![e]);
        // Roots' siblings are the other roots.
        assert_eq!(t.siblings(r0), vec![r1]);
        // Uncles of b = siblings of a = [e].
        assert_eq!(t.uncles(b), vec![e]);
        // Uncles of a (a level-1 node) = siblings of r0 = other roots.
        assert_eq!(t.uncles(a), vec![r1]);
        assert_eq!(t.uncles(r0), vec![]);
    }

    #[test]
    fn level_index_is_complete() {
        let (t, _) = sample();
        let total: usize = (0..t.num_levels()).map(|l| t.nodes_at_level(l).len()).sum();
        assert_eq!(total, t.len());
        assert_eq!(t.nodes_at_level(0).len(), 2);
        assert_eq!(t.nodes_at_level(1).len(), 3);
        assert_eq!(t.nodes_at_level(2).len(), 2);
        assert!(t.nodes_at_level(99).is_empty());
    }

    #[test]
    fn leaves_and_subtree_size() {
        let (t, ids) = sample();
        let [r0, _, a, b, c, d, e] = ids[..] else { unreachable!() };
        let mut leaves = t.leaves();
        leaves.sort();
        let mut expect = vec![b, c, d, e];
        expect.sort();
        assert_eq!(leaves, expect);
        assert_eq!(t.subtree_size(r0), 5);
        assert_eq!(t.subtree_size(a), 3);
        assert_eq!(t.subtree_size(b), 1);
    }

    #[test]
    fn is_ancestor() {
        let (t, ids) = sample();
        let [r0, r1, a, b, ..] = ids[..] else { unreachable!() };
        assert!(t.is_ancestor(r0, b));
        assert!(t.is_ancestor(a, b));
        assert!(!t.is_ancestor(b, a));
        assert!(!t.is_ancestor(r1, b));
        assert!(!t.is_ancestor(b, b));
    }

    #[test]
    fn empty_taxonomy() {
        let t = TaxonomyBuilder::new("empty").build().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.num_levels(), 0);
        assert!(t.roots().is_empty());
    }
}
