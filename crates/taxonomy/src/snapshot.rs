//! Content-addressed on-disk taxonomy snapshots.
//!
//! Generating the NCBI-scale forest costs hundreds of milliseconds;
//! loading its binary snapshot costs tens. Since every bench bin wants
//! the same `(kind, seed, scale)` taxonomies, a small on-disk cache
//! amortizes generation across the whole bench suite: generate once,
//! load from binary thereafter.
//!
//! The cache is *content-addressed by construction inputs*: the caller
//! builds a key naming everything that determines the bytes (kind
//! label, seed, scale bits, codec version, generator stream version),
//! and the file is additionally integrity-checked — a rolling checksum
//! over the payload is stored in the header and verified on load.
//! Any mismatch (truncation, corruption, a key colliding with a stale
//! format) makes [`SnapshotStore::load`] return `None`, and the caller
//! regenerates. A snapshot can therefore be deleted or corrupted at any
//! time without poisoning results; the worst case is a regeneration.
//!
//! File layout (little-endian):
//!
//! ```text
//! magic    : b"TXSP"
//! version  : u16 (currently 1)
//! checksum : u64 rolling checksum of payload
//! length   : u64 payload byte count
//! payload  : TAXG binary taxonomy (see crate::binary)
//! ```
//!
//! Saves go through a temp file + rename so a crashed writer leaves
//! either the old snapshot or none, never a half-written one.

use crate::arena::Taxonomy;
use crate::binary::CODEC_VERSION;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"TXSP";
const SNAPSHOT_VERSION: u16 = 1;
const HEADER_LEN: usize = 4 + 2 + 8 + 8;

/// Environment variable overriding the default cache directory.
pub const CACHE_DIR_ENV: &str = "TAXOGLIMPSE_CACHE_DIR";
const DEFAULT_DIR: &str = "target/taxo-cache";

/// A directory of checksummed taxonomy snapshots keyed by construction
/// inputs.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// A store rooted at `dir` (created lazily on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SnapshotStore { dir: dir.into() }
    }

    /// The default cache directory: `$TAXOGLIMPSE_CACHE_DIR` if set,
    /// otherwise `target/taxo-cache` under the current directory.
    pub fn default_dir() -> PathBuf {
        match std::env::var_os(CACHE_DIR_ENV) {
            Some(dir) if !dir.is_empty() => PathBuf::from(dir),
            _ => PathBuf::from(DEFAULT_DIR),
        }
    }

    /// A store rooted at [`SnapshotStore::default_dir`].
    pub fn open_default() -> Self {
        Self::new(Self::default_dir())
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cache key for a generated taxonomy: everything that determines
    /// its bytes. `stream_version` names the generator's RNG stream
    /// discipline (bump it when the name streams change) and the codec
    /// version invalidates snapshots across binary-format revisions.
    pub fn key(label: &str, seed: u64, scale: f64, stream_version: u32) -> String {
        format!(
            "{}-s{seed:016x}-f{:016x}-g{stream_version}-c{CODEC_VERSION}",
            sanitize(label),
            scale.to_bits(),
        )
    }

    /// Path a given key maps to.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{}.bin", sanitize(key)))
    }

    /// Load the snapshot stored under `key`, or `None` if it is absent,
    /// truncated, corrupt, or structurally invalid. `None` always means
    /// "regenerate"; it is never an error.
    pub fn load(&self, key: &str) -> Option<Taxonomy> {
        let mut file = fs::File::open(self.path_for(key)).ok()?;
        let mut header = [0u8; HEADER_LEN];
        io::Read::read_exact(&mut file, &mut header).ok()?;
        if &header[..4] != MAGIC {
            return None;
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != SNAPSHOT_VERSION {
            return None;
        }
        let stored_sum = u64::from_le_bytes(
            header[6..14].try_into().expect("header slice is exactly 8 bytes"),
        );
        let stored_len = u64::from_le_bytes(
            header[14..22].try_into().expect("header slice is exactly 8 bytes"),
        );
        // The payload must be exactly the declared length — a shorter
        // file is truncation, a longer one trailing garbage — and
        // checking against the real file size up front means a corrupt
        // length can never request an allocation the file cannot back.
        let on_disk = file.metadata().ok()?.len();
        if on_disk.saturating_sub(HEADER_LEN as u64) != stored_len {
            return None;
        }

        // Stage the payload in two buffers — the structural prefix
        // ("head", through the offset table) and the name block — so the
        // v2 decoder can adopt the name-block buffer as the taxonomy's
        // name arena without moving its ~tens of MB again, and the
        // checksum streams over the pieces while they are still warm.
        let mut head = Vec::new();
        read_chunk(&mut file, &mut head, 10.min(stored_len))?;
        let is_v2 = head.len() == 10
            && &head[..4] == crate::binary::MAGIC
            && u16::from_le_bytes([head[4], head[5]]) == CODEC_VERSION;
        if !is_v2 {
            // Legacy v1 (or foreign) payload: slurp the remainder and
            // decode it contiguously; correctness over speed here.
            let remaining = stored_len - head.len() as u64;
            read_chunk(&mut file, &mut head, remaining)?;
            if checksum(&head) != stored_sum {
                return None;
            }
            return Taxonomy::from_binary_owned(head).ok();
        }
        let label_len =
            u32::from_le_bytes(head[6..10].try_into().expect("head holds 10 bytes")) as u64;
        let label_and_count = label_len.checked_add(8)?;
        if label_and_count > stored_len - head.len() as u64 {
            return None;
        }
        read_chunk(&mut file, &mut head, label_and_count)?;
        let n = u64::from_le_bytes(
            head[head.len() - 8..].try_into().expect("count field is 8 bytes"),
        );
        if n > u32::MAX as u64 {
            return None;
        }
        // Parents (4n) + name-block length (8) + offsets (4(n+1)).
        let tables = 4 * n + 8 + 4 * (n + 1);
        if tables > stored_len - head.len() as u64 {
            return None;
        }
        read_chunk(&mut file, &mut head, tables)?;
        let nb_off = head.len() - (n as usize + 1) * 4 - 8;
        let name_bytes = u64::from_le_bytes(
            head[nb_off..nb_off + 8].try_into().expect("length field is 8 bytes"),
        );
        if head.len() as u64 + name_bytes != stored_len {
            return None;
        }
        // Integrity before structure: the streamed checksum over the
        // pieces equals the one-shot checksum over the whole payload.
        // The name block is read and checksummed in cache-sized slices
        // so each slice is still warm when the checksum walks it.
        let mut sum = ChecksumStream::new();
        sum.update(&head);
        let mut names = Vec::new();
        names.reserve_exact(name_bytes as usize + 1);
        const SLICE: u64 = 8 << 20;
        let mut done = 0u64;
        // ASCII-ness is proven slice by slice alongside the checksum so
        // the decoder never has to rescan the (by then cold) name block.
        let mut names_ascii = true;
        while done < name_bytes {
            let step = (name_bytes - done).min(SLICE);
            read_chunk(&mut file, &mut names, step)?;
            let slice = &names[done as usize..];
            sum.update(slice);
            names_ascii &= slice.is_ascii();
            done += step;
        }
        if sum.finish() != stored_sum {
            return None;
        }
        crate::binary::from_binary_split(&head, names, Some(names_ascii)).ok()
    }

    /// Serialize `taxonomy` under `key`, atomically (temp file +
    /// rename). Returns the final path.
    pub fn save(&self, key: &str, taxonomy: &Taxonomy) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let payload = taxonomy.to_binary();
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&checksum(&payload).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);

        let path = self.path_for(key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, &bytes)?;
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(path),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Load the snapshot under `key`, or generate it with `generate`
    /// and save it for next time. Save failures are reported to stderr
    /// but do not fail the call — a read-only cache degrades to
    /// regeneration, never to an error.
    pub fn load_or_generate(
        &self,
        key: &str,
        generate: impl FnOnce() -> Taxonomy,
    ) -> Taxonomy {
        if let Some(t) = self.load(key) {
            return t;
        }
        let t = generate();
        if let Err(e) = self.save(key, &t) {
            eprintln!("warning: could not save taxonomy snapshot {key}: {e}");
        }
        t
    }
}

/// Append exactly `len` bytes from `file` to `out`, or fail. The
/// reserve ahead of `read_to_end` lets it read straight into spare
/// capacity; `len` has always been validated against the real file size
/// by the caller, so the allocation is bounded by the file.
fn read_chunk(file: &mut fs::File, out: &mut Vec<u8>, len: u64) -> Option<()> {
    out.reserve(len as usize + 1);
    let got = io::Read::read_to_end(&mut io::Read::take(io::Read::by_ref(file), len), out).ok()?;
    (got as u64 == len).then_some(())
}

/// Keep keys filesystem-safe: alphanumerics plus `._-`, everything else
/// mapped to `_`.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '_' })
        .collect()
}

const CHECKSUM_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Streaming form of [`checksum`]: feed bytes in arbitrary pieces via
/// [`ChecksumStream::update`], then [`ChecksumStream::finish`]. The
/// result is identical to one-shot [`checksum`] over the concatenation,
/// which lets the snapshot loader verify integrity while the payload
/// streams in from disk instead of re-reading a 50+ MB buffer cold.
#[derive(Debug, Clone)]
pub struct ChecksumStream {
    lanes: [u64; 4],
    carry: [u8; 32],
    carry_len: usize,
    total: u64,
}

impl Default for ChecksumStream {
    fn default() -> Self {
        Self::new()
    }
}

impl ChecksumStream {
    /// A fresh stream (equivalent to `checksum(b"")` when finished).
    pub fn new() -> Self {
        ChecksumStream {
            lanes: [
                0x243F_6A88_85A3_08D3u64,
                0x1319_8A2E_0370_7344,
                0xA409_3822_299F_31D0,
                0x082E_FA98_EC4E_6C89,
            ],
            carry: [0u8; 32],
            carry_len: 0,
            total: 0,
        }
    }

    /// Absorb `bytes`. Chunk boundaries never affect the final value:
    /// partial 32-byte blocks are carried into the next update.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.total += bytes.len() as u64;
        if self.carry_len > 0 {
            let need = (32 - self.carry_len).min(bytes.len());
            self.carry[self.carry_len..self.carry_len + need].copy_from_slice(&bytes[..need]);
            self.carry_len += need;
            bytes = &bytes[need..];
            if self.carry_len < 32 {
                return;
            }
            let block = self.carry;
            self.absorb(&block);
            self.carry_len = 0;
        }
        let mut chunks = bytes.chunks_exact(32);
        for chunk in &mut chunks {
            self.absorb(chunk.try_into().expect("chunks_exact yields 32 bytes"));
        }
        let rem = chunks.remainder();
        self.carry[..rem.len()].copy_from_slice(rem);
        self.carry_len = rem.len();
    }

    #[inline(always)]
    fn absorb(&mut self, block: &[u8; 32]) {
        for (lane, word) in self.lanes.iter_mut().zip(block.chunks_exact(8)) {
            let w = u64::from_le_bytes(word.try_into().expect("chunks_exact yields 8 bytes"));
            *lane = (*lane ^ w).wrapping_mul(CHECKSUM_MUL).rotate_left(29);
        }
    }

    /// Fold the tail and lane state into the final checksum.
    pub fn finish(mut self) -> u64 {
        let mut tail = 0u64;
        for (i, &b) in self.carry[..self.carry_len].iter().enumerate() {
            tail ^= (b as u64) << ((i % 8) * 8);
            if i % 8 == 7 {
                self.lanes[0] =
                    (self.lanes[0] ^ tail).wrapping_mul(CHECKSUM_MUL).rotate_left(29);
                tail = 0;
            }
        }
        self.lanes[0] = (self.lanes[0] ^ tail).wrapping_mul(CHECKSUM_MUL).rotate_left(29);
        let mut h = self.total;
        for lane in self.lanes {
            h = (h ^ lane).wrapping_mul(CHECKSUM_MUL).rotate_left(32);
        }
        h ^ (h >> 29)
    }
}

/// Rolling checksum over `bytes`: four interleaved xor-multiply-rotate
/// lanes (for instruction-level parallelism on the 50+ MB NCBI
/// payload), folded together with the length at the end. Not
/// cryptographic — it guards against truncation and bit rot, not
/// adversaries; the structural validation in `from_binary` backstops it.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut stream = ChecksumStream::new();
    stream.update(bytes);
    stream.finish()
}

impl Taxonomy {
    /// A stable digest of this taxonomy's full content (label, names,
    /// structure): the snapshot checksum of its binary encoding. Two
    /// taxonomies with equal digests are byte-identical on the wire,
    /// which is what the parallel-generation equivalence tests compare.
    pub fn content_digest(&self) -> u64 {
        checksum(&self.to_binary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    fn sample(label: &str) -> Taxonomy {
        let mut b = TaxonomyBuilder::new(label);
        let r = b.add_root("Root");
        let a = b.add_child(r, "Alpha");
        b.add_child(a, "Beta");
        b.build().expect("sample taxonomy builds cleanly")
    }

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir = std::env::temp_dir()
            .join(format!("taxo-snap-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::new(dir)
    }

    #[test]
    fn round_trip_through_disk() {
        let store = temp_store("rt");
        let t = sample("snap");
        let key = SnapshotStore::key("snap", 42, 0.1, 1);
        assert!(store.load(&key).is_none(), "cold cache must miss");
        store.save(&key, &t).expect("save to fresh temp dir succeeds");
        let back = store.load(&key).expect("freshly saved snapshot loads");
        assert_eq!(back.content_digest(), t.content_digest());
        assert_eq!(back.label(), "snap");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_snapshot_misses() {
        let store = temp_store("corrupt");
        let t = sample("snap");
        let key = SnapshotStore::key("snap", 7, 0.5, 1);
        let path = store.save(&key, &t).expect("save to fresh temp dir succeeds");
        let mut bytes = fs::read(&path).expect("saved snapshot is readable");
        // Flip one payload byte: checksum must catch it.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).expect("rewrite of snapshot succeeds");
        assert!(store.load(&key).is_none(), "corrupt payload must miss");
        // Truncation must miss too.
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("rewrite succeeds");
        assert!(store.load(&key).is_none(), "truncated snapshot must miss");
        // And an empty file.
        fs::write(&path, b"").expect("rewrite succeeds");
        assert!(store.load(&key).is_none(), "empty snapshot must miss");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_or_generate_populates_then_hits() {
        let store = temp_store("pop");
        let key = SnapshotStore::key("snap", 1, 1.0, 1);
        let mut generated = 0;
        let t1 = store.load_or_generate(&key, || {
            generated += 1;
            sample("snap")
        });
        let t2 = store.load_or_generate(&key, || {
            generated += 1;
            sample("snap")
        });
        assert_eq!(generated, 1, "second call must be served from disk");
        assert_eq!(t1.content_digest(), t2.content_digest());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn keys_separate_inputs() {
        let a = SnapshotStore::key("ncbi", 42, 1.0, 1);
        let b = SnapshotStore::key("ncbi", 43, 1.0, 1);
        let c = SnapshotStore::key("ncbi", 42, 0.5, 1);
        let d = SnapshotStore::key("ncbi", 42, 1.0, 2);
        let e = SnapshotStore::key("icd-10-cm", 42, 1.0, 1);
        let keys = [&a, &b, &c, &d, &e];
        for (i, x) in keys.iter().enumerate() {
            for y in &keys[i + 1..] {
                assert_ne!(x, y);
            }
        }
        // Keys are filesystem-safe even for hostile labels.
        let hostile = SnapshotStore::key("../../etc/passwd", 0, 0.1, 1);
        assert!(!hostile.contains('/') && !hostile.contains("..{"));
    }

    #[test]
    fn checksum_sensitivity() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 37 % 251) as u8).collect();
        let base = checksum(&data);
        for at in [0usize, 1, 7, 8, 31, 32, 33, 1000, 1023] {
            let mut tweaked = data.clone();
            tweaked[at] ^= 1;
            assert_ne!(checksum(&tweaked), base, "flip at {at} must change the sum");
        }
        // Length extension with zeros must change the sum too.
        let mut longer = data.clone();
        longer.push(0);
        assert_ne!(checksum(&longer), base);
        assert_ne!(checksum(b""), checksum(&[0u8]));
    }
}
