//! Serialization: JSON (via the in-tree `taxoglimpse-json` crate) and a
//! line-oriented TSV format.
//!
//! The TSV format is one node per line, level order:
//! `id \t parent_id_or_dash \t name`. It round-trips any taxonomy and is
//! convenient for eyeballing synthetic data.

use crate::arena::Taxonomy;
use crate::builder::{BuildError, TaxonomyBuilder};
use std::fmt;
use taxoglimpse_json::{FromJson, Json, JsonError, ToJson};

/// Flat, serialization-friendly representation of a taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatTaxonomy {
    /// Taxonomy label.
    pub label: String,
    /// Node names, index-aligned with `parents`.
    pub names: Vec<String>,
    /// Parent index per node (`None` for roots).
    pub parents: Vec<Option<usize>>,
}

impl ToJson for FlatTaxonomy {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", self.label.to_json()),
            ("names", self.names.to_json()),
            ("parents", self.parents.to_json()),
        ])
    }
}

impl FromJson for FlatTaxonomy {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(FlatTaxonomy {
            label: json.field_as("label")?,
            names: json.field_as("names")?,
            parents: json.field_as("parents")?,
        })
    }
}

/// Errors from parsing the TSV format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsvError {
    /// A line did not have three tab-separated fields.
    BadLine {
        /// 1-based line number.
        line_no: usize,
    },
    /// A field that should be an integer was not.
    BadNumber {
        /// 1-based line number.
        line_no: usize,
    },
    /// Node ids were not dense `0..n` in order.
    NonDenseIds {
        /// 1-based line number.
        line_no: usize,
    },
    /// The edges failed structural validation.
    Build(BuildError),
}

impl fmt::Display for TsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsvError::BadLine { line_no } => write!(f, "line {line_no}: expected 3 fields"),
            TsvError::BadNumber { line_no } => write!(f, "line {line_no}: bad integer"),
            TsvError::NonDenseIds { line_no } => write!(f, "line {line_no}: ids must be dense 0..n"),
            TsvError::Build(e) => write!(f, "structure error: {e}"),
        }
    }
}

impl std::error::Error for TsvError {}

impl Taxonomy {
    /// Convert to the flat serialization representation.
    pub fn to_flat(&self) -> FlatTaxonomy {
        FlatTaxonomy {
            label: self.label().to_owned(),
            names: self.ids().map(|id| self.name(id).to_owned()).collect(),
            parents: self.ids().map(|id| self.parent(id).map(|p| p.index())).collect(),
        }
    }

    /// Reconstruct from the flat representation.
    pub fn from_flat(flat: &FlatTaxonomy) -> Result<Self, BuildError> {
        TaxonomyBuilder::from_edges(flat.label.clone(), &flat.names, &flat.parents)
    }

    /// Serialize as JSON.
    pub fn to_json(&self) -> String {
        self.to_flat().to_json().render()
    }

    /// Deserialize from JSON produced by [`Taxonomy::to_json`].
    pub fn from_json(json: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let flat: FlatTaxonomy = taxoglimpse_json::from_str(json)?;
        Ok(Self::from_flat(&flat)?)
    }

    /// Serialize in the TSV format (header line `# label`, then
    /// `id \t parent-or-dash \t name` per node).
    pub fn to_tsv(&self) -> String {
        let mut out = String::with_capacity(self.name_bytes() + self.len() * 10);
        out.push_str("# ");
        out.push_str(self.label());
        out.push('\n');
        for id in self.ids() {
            match self.parent(id) {
                Some(p) => out.push_str(&format!("{}\t{}\t{}\n", id.raw(), p.raw(), self.name(id))),
                None => out.push_str(&format!("{}\t-\t{}\n", id.raw(), self.name(id))),
            }
        }
        out
    }

    /// Parse the TSV format.
    pub fn from_tsv(tsv: &str) -> Result<Self, TsvError> {
        let mut label = String::from("unnamed");
        let mut names = Vec::new();
        let mut parents = Vec::new();
        for (i, line) in tsv.lines().enumerate() {
            let line_no = i + 1;
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                label = rest.to_owned();
                continue;
            }
            let mut fields = line.splitn(3, '\t');
            let (Some(id_s), Some(parent_s), Some(name)) =
                (fields.next(), fields.next(), fields.next())
            else {
                return Err(TsvError::BadLine { line_no });
            };
            let id: usize = id_s.parse().map_err(|_| TsvError::BadNumber { line_no })?;
            if id != names.len() {
                return Err(TsvError::NonDenseIds { line_no });
            }
            let parent = if parent_s == "-" {
                None
            } else {
                Some(parent_s.parse().map_err(|_| TsvError::BadNumber { line_no })?)
            };
            names.push(name.to_owned());
            parents.push(parent);
        }
        TaxonomyBuilder::from_edges(label, &names, &parents).map_err(TsvError::Build)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, TaxonomyBuilder};

    fn sample() -> Taxonomy {
        let mut b = TaxonomyBuilder::new("fixture");
        let r = b.add_root("Root Thing");
        let a = b.add_child(r, "Child A");
        b.add_child(a, "Grand-child");
        b.add_child(r, "Child B");
        b.build().unwrap()
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let back = Taxonomy::from_json(&t.to_json()).unwrap();
        validate(&back).unwrap();
        assert_eq!(back.label(), "fixture");
        assert_eq!(back.len(), t.len());
        // Ids are not stable across round trips (nodes are re-inserted in
        // level order); compare canonical (name, level, parent-name) sets.
        let canon = |t: &Taxonomy| {
            let mut v: Vec<(String, usize, Option<String>)> = t
                .ids()
                .map(|id| {
                    (
                        t.name(id).to_owned(),
                        t.level(id),
                        t.parent(id).map(|p| t.name(p).to_owned()),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&t), canon(&back));
    }

    #[test]
    fn tsv_round_trip() {
        let t = sample();
        let tsv = t.to_tsv();
        assert!(tsv.starts_with("# fixture\n"));
        let back = Taxonomy::from_tsv(&tsv).unwrap();
        validate(&back).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.name(back.roots()[0]), "Root Thing");
    }

    #[test]
    fn tsv_rejects_bad_lines() {
        assert!(matches!(
            Taxonomy::from_tsv("0\tjunk"),
            Err(TsvError::BadLine { line_no: 1 })
        ));
        assert!(matches!(
            Taxonomy::from_tsv("x\t-\tname"),
            Err(TsvError::BadNumber { line_no: 1 })
        ));
        assert!(matches!(
            Taxonomy::from_tsv("5\t-\tname"),
            Err(TsvError::NonDenseIds { line_no: 1 })
        ));
    }

    #[test]
    fn tsv_rejects_cycles() {
        let tsv = "0\t1\ta\n1\t0\tb\n";
        assert!(matches!(Taxonomy::from_tsv(tsv), Err(TsvError::Build(_))));
    }

    #[test]
    fn names_with_tabs_survive_json_but_not_tsv_format_choice() {
        // JSON handles any name; TSV callers should avoid embedded tabs.
        let mut b = TaxonomyBuilder::new("t");
        b.add_root("weird\tname");
        let t = b.build().unwrap();
        let back = Taxonomy::from_json(&t.to_json()).unwrap();
        assert_eq!(back.name(back.roots()[0]), "weird\tname");
    }
}
