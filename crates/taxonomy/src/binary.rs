//! Compact binary serialization.
//!
//! The JSON/TSV formats are human-friendly but bulky: the full NCBI
//! forest (2.19M nodes) is ~90 MB of JSON. This length-prefixed binary
//! codec stores the same flat representation in roughly `names + 9
//! bytes/node`, encodes/decodes in one pass, and validates structure on
//! load.
//!
//! Version 2 layout (all integers little-endian):
//!
//! ```text
//! magic      : b"TAXG"
//! version    : u16 (currently 2)
//! label      : u32 length + utf-8 bytes
//! n          : u64 node count
//! parents    : n × u32            (u32::MAX = root)
//! name_bytes : u64 total bytes of name data
//! offsets    : (n + 1) × u32      (name i = name_buf[offsets[i]..offsets[i+1]])
//! name_buf   : name_bytes of utf-8 (one contiguous block)
//! ```
//!
//! Storing the name arena as one contiguous block with an offset table
//! (instead of v1's per-name length prefixes) lets the loader slurp all
//! names with a single allocation and a single UTF-8 validation pass —
//! no per-name `String` — which is what makes snapshot-load an order of
//! magnitude faster than regeneration for the NCBI-scale forest.
//!
//! When every parent index precedes its child (true for anything this
//! crate's writer emits, since the builder can only attach children to
//! existing nodes), the v2 loader reconstructs levels, the CSR child
//! list, and the per-level index directly from the columns without the
//! `from_edges` re-insertion pass, preserving node order exactly. Files
//! with forward parent references fall back to the validating
//! `from_edges` path (full dangling/cycle detection), same as v1.
//!
//! Version 1 (`parents` followed by `n × (u32 length + utf-8)` names) is
//! still decoded for old snapshots; [`Taxonomy::to_binary`] always
//! writes v2.

use crate::arena::{Taxonomy, NO_PARENT};
use crate::builder::{BuildError, TaxonomyBuilder};
use crate::node::NodeId;
use std::fmt;

pub(crate) const MAGIC: &[u8; 4] = b"TAXG";
const VERSION_V1: u16 = 1;
const VERSION_V2: u16 = 2;
const ROOT_SENTINEL: u32 = u32::MAX;

/// Current write-side codec version. Snapshot cache keys embed this so a
/// codec change invalidates cached files instead of misreading them.
pub const CODEC_VERSION: u16 = VERSION_V2;

/// Binary decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The buffer ended before the declared content.
    Truncated,
    /// A name was not valid UTF-8.
    BadUtf8,
    /// The v2 offset table is inconsistent (non-monotonic, out of range,
    /// or splitting a UTF-8 sequence).
    BadOffsets,
    /// Structure failed validation after decode.
    Build(BuildError),
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::BadMagic => write!(f, "not a TAXG binary taxonomy"),
            BinaryError::BadVersion(v) => write!(f, "unsupported TAXG version {v}"),
            BinaryError::Truncated => write!(f, "buffer ends before declared content"),
            BinaryError::BadUtf8 => write!(f, "name is not valid UTF-8"),
            BinaryError::BadOffsets => write!(f, "name offset table is inconsistent"),
            BinaryError::Build(e) => write!(f, "structure error: {e}"),
        }
    }
}

impl std::error::Error for BinaryError {}

impl Taxonomy {
    /// Encode into the TAXG binary format (current version).
    pub fn to_binary(&self) -> Vec<u8> {
        let n = self.len();
        let mut buf = Vec::with_capacity(
            4 + 2 + 4 + self.label().len() + 8 + n * 4 + 8 + (n + 1) * 4 + self.name_bytes(),
        );
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION_V2.to_le_bytes());
        buf.extend_from_slice(&(self.label().len() as u32).to_le_bytes());
        buf.extend_from_slice(self.label().as_bytes());
        buf.extend_from_slice(&(n as u64).to_le_bytes());
        for &p in &self.parent {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        buf.extend_from_slice(&(self.name_buf.len() as u64).to_le_bytes());
        // Spans are contiguous by construction (each name starts where
        // the previous one ends), so n + 1 offsets describe all of them.
        buf.extend_from_slice(&0u32.to_le_bytes());
        for &(_, end) in &self.name_spans {
            buf.extend_from_slice(&end.to_le_bytes());
        }
        buf.extend_from_slice(self.name_buf.as_bytes());
        buf
    }

    /// Encode into the legacy v1 TAXG format (per-name length prefixes).
    /// Kept for interop tests and for exercising the v1 decode path.
    pub fn to_binary_v1(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(
            4 + 2 + 4 + self.label().len() + 8 + self.len() * 9 + self.name_bytes(),
        );
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION_V1.to_le_bytes());
        buf.extend_from_slice(&(self.label().len() as u32).to_le_bytes());
        buf.extend_from_slice(self.label().as_bytes());
        buf.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for id in self.ids() {
            let raw = self.parent(id).map_or(ROOT_SENTINEL, |p| p.raw());
            buf.extend_from_slice(&raw.to_le_bytes());
        }
        for id in self.ids() {
            let name = self.name(id);
            buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
        }
        buf
    }

    /// Decode from the TAXG binary format (with full structural
    /// validation). Accepts both the current v2 layout and legacy v1.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, BinaryError> {
        let mut buf = bytes;
        if buf.len() < 4 || &buf[..4] != MAGIC {
            return Err(BinaryError::BadMagic);
        }
        buf = &buf[4..];
        let version = get_u16(&mut buf)?;
        match version {
            VERSION_V1 => from_binary_v1(buf),
            VERSION_V2 => {
                let rest = buf;
                let decoded = decode_v2(rest)?;
                Ok(materialize_names(decoded, |range| {
                    String::from_utf8(rest[range].to_vec())
                        .expect("decode_v2 validated the name block as UTF-8")
                }))
            }
            other => Err(BinaryError::BadVersion(other)),
        }
    }

    /// Decode from the TAXG binary format, consuming the buffer. For v2
    /// payloads this reuses `bytes` as the name arena (the multi-MB name
    /// block is slid to the front of the existing allocation instead of
    /// copied into a fresh one), which is what keeps NCBI-scale snapshot
    /// loads an order of magnitude cheaper than regeneration. Semantics
    /// are otherwise identical to [`Taxonomy::from_binary`].
    pub fn from_binary_owned(mut bytes: Vec<u8>) -> Result<Self, BinaryError> {
        if bytes.len() < 6 || &bytes[..4] != MAGIC {
            return Err(BinaryError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        match version {
            VERSION_V1 => from_binary_v1(&bytes[6..]),
            VERSION_V2 => {
                let decoded = decode_v2(&bytes[6..])?;
                Ok(materialize_names(decoded, move |range| {
                    // Range is relative to the payload after magic+version.
                    bytes.truncate(6 + range.end);
                    bytes.drain(..6 + range.start);
                    debug_assert!(std::str::from_utf8(&bytes).is_ok());
                    // SAFETY: `bytes` now holds exactly the name-block
                    // range that decode_v2 validated as UTF-8 (truncate +
                    // drain preserve those bytes unchanged).
                    unsafe { String::from_utf8_unchecked(bytes) }
                }))
            }
            other => Err(BinaryError::BadVersion(other)),
        }
    }
}

/// Decode a v2 payload whose name block was read into its own buffer:
/// `head` is the payload from magic through the offset table, `names`
/// the name block, which becomes the taxonomy's name arena without a
/// copy. Snapshot loading stages its file reads this way so an
/// NCBI-scale name arena (~38 MB) is never moved after leaving the
/// kernel.
///
/// `names_ascii`, when `Some`, must equal `names.is_ascii()` — the
/// loader computes it over each slice while the bytes are still cache
/// warm, sparing the decoder a cold rescan. A wrong `Some(true)` would
/// skip UTF-8 validation, so only pass a value actually derived from
/// `names`' bytes.
pub(crate) fn from_binary_split(
    head: &[u8],
    names: Vec<u8>,
    names_ascii: Option<bool>,
) -> Result<Taxonomy, BinaryError> {
    if head.len() < 6 || &head[..4] != MAGIC {
        return Err(BinaryError::BadMagic);
    }
    let version = u16::from_le_bytes([head[4], head[5]]);
    if version != VERSION_V2 {
        return Err(BinaryError::BadVersion(version));
    }
    let decoded = decode_v2_with(&head[6..], Some(&names), names_ascii)?;
    Ok(materialize_names(decoded, move |range| {
        debug_assert_eq!(range, 0..names.len());
        debug_assert!(std::str::from_utf8(&names).is_ok());
        // SAFETY: decode_v2_with validated the full name block as UTF-8.
        unsafe { String::from_utf8_unchecked(names) }
    }))
}

/// A decoded v2 taxonomy whose name arena has not been materialized yet:
/// `name_range` locates the validated UTF-8 name block — relative to
/// the bytes after magic+version for an inline decode, or within the
/// separate block for a split decode — and is `None` when the fallback
/// path already produced a complete taxonomy.
struct DecodedV2 {
    taxonomy: Taxonomy,
    name_range: Option<std::ops::Range<usize>>,
}

fn materialize_names(
    decoded: DecodedV2,
    make: impl FnOnce(std::ops::Range<usize>) -> String,
) -> Taxonomy {
    let DecodedV2 { mut taxonomy, name_range } = decoded;
    if let Some(range) = name_range {
        taxonomy.name_buf = make(range);
    }
    taxonomy
}

fn from_binary_v1(mut rest: &[u8]) -> Result<Taxonomy, BinaryError> {
    let buf = &mut rest;
    let label = get_string(buf)?;
    let n = get_u64(buf)? as usize;
    // Every node costs at least 4 (parent) + 4 (name length) bytes, so a
    // declared count larger than the remaining buffer can support is a
    // truncation — reject it *before* sizing any vector off `n`.
    if buf.len() < n.checked_mul(8).ok_or(BinaryError::Truncated)? {
        return Err(BinaryError::Truncated);
    }
    let mut parents = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = get_u32(buf)?;
        parents.push((raw != ROOT_SENTINEL).then_some(raw as usize));
    }
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(get_string(buf)?);
    }
    TaxonomyBuilder::from_edges(label, &names, &parents).map_err(BinaryError::Build)
}

fn decode_v2(rest: &[u8]) -> Result<DecodedV2, BinaryError> {
    decode_v2_with(rest, None, None)
}

/// Shared v2 decoder: `rest` holds everything after magic+version, and
/// the name block either follows the offset table inside `rest`
/// (`split_names: None`) or was staged into its own buffer
/// (`Some(block)`), whose length must match the declared count.
/// `ascii_hint` is the caller's precomputed `is_ascii()` of the split
/// name block, if it has one (see [`from_binary_split`]).
fn decode_v2_with(
    rest: &[u8],
    split_names: Option<&[u8]>,
    ascii_hint: Option<bool>,
) -> Result<DecodedV2, BinaryError> {
    let mut cursor = rest;
    let buf = &mut cursor;
    let label = get_string(buf)?;
    let n = get_u64(buf)? as usize;
    if n > u32::MAX as usize {
        return Err(BinaryError::Build(BuildError::TooManyNodes));
    }
    // Minimum remaining size implied by the header: parents (4n) +
    // name_bytes field (8) + offsets (4(n+1)). Checked before the first
    // `Vec::with_capacity(n)` so an adversarial count cannot request a
    // huge allocation from a tiny buffer.
    let min_len = n
        .checked_mul(8)
        .and_then(|b| b.checked_add(12))
        .ok_or(BinaryError::Truncated)?;
    if buf.len() < min_len {
        return Err(BinaryError::Truncated);
    }

    let parent_bytes = take(buf, n * 4)?;
    let parent: Vec<u32> = parent_bytes
        .chunks_exact(4)
        .map(|chunk| u32::from_le_bytes(chunk.try_into().expect("chunks_exact yields 4 bytes")))
        .collect();

    let name_bytes = get_u64(buf)? as usize;
    let offset_bytes = take(buf, (n + 1) * 4)?;
    // The name block must actually be present before we use it.
    let (name_start, name_block) = match split_names {
        None => {
            if buf.len() < name_bytes {
                return Err(BinaryError::Truncated);
            }
            let start = rest.len() - buf.len();
            (start, take(buf, name_bytes)?)
        }
        Some(block) => {
            if block.len() != name_bytes {
                return Err(BinaryError::Truncated);
            }
            (0, block)
        }
    };
    // ASCII blocks (the common case for generated taxonomies) are
    // trivially valid UTF-8 and make every offset a char boundary, so
    // one SIMD-friendly `is_ascii` scan replaces both the full UTF-8
    // validation and the per-span boundary checks below.
    let ascii = match (split_names, ascii_hint) {
        (Some(_), Some(hint)) => {
            debug_assert_eq!(hint, name_block.is_ascii(), "caller-supplied ASCII hint must match");
            hint
        }
        _ => name_block.is_ascii(),
    };
    let name_str = if ascii {
        // SAFETY: ASCII is a strict subset of UTF-8.
        unsafe { std::str::from_utf8_unchecked(name_block) }
    } else {
        std::str::from_utf8(name_block).map_err(|_| BinaryError::BadUtf8)?
    };

    // Offsets: first = 0, last = name_bytes, monotonic (which together
    // bound every span by name_bytes), each on a char boundary. The
    // monotonicity flag is folded instead of branch-per-span so the
    // span-building loop stays vectorizable.
    let off_at = |i: usize| {
        u32::from_le_bytes(
            offset_bytes[i * 4..i * 4 + 4].try_into().expect("offset table holds n + 1 entries"),
        )
    };
    if off_at(0) != 0 || off_at(n) as usize != name_bytes {
        return Err(BinaryError::BadOffsets);
    }
    let mut name_spans: Vec<(u32, u32)> = Vec::with_capacity(n);
    let mut monotonic = true;
    let mut prev = 0u32;
    name_spans.extend(offset_bytes[4..].chunks_exact(4).map(|chunk| {
        let end = u32::from_le_bytes(chunk.try_into().expect("chunks_exact yields 4 bytes"));
        monotonic &= prev <= end;
        let span = (prev, end);
        prev = end;
        span
    }));
    if !monotonic {
        return Err(BinaryError::BadOffsets);
    }
    if !ascii {
        for &(start, end) in &name_spans {
            if !name_str.is_char_boundary(start as usize)
                || !name_str.is_char_boundary(end as usize)
            {
                return Err(BinaryError::BadOffsets);
            }
        }
    }

    // One fused forward pass over the parent column: rejects
    // out-of-range parents, detects forward references (which drop to
    // the validating from_edges fallback), derives levels and child
    // counts (parents always precede children on this path), and tracks
    // two writer-shape properties that unlock the fast constructions
    // below — non-root parents globally non-decreasing (scatter-free
    // CSR) and a non-decreasing level column (range-fill per-level
    // index). Both hold for anything this crate's builder emits, where
    // every level is one contiguous id range.
    let mut ordered = true;
    let mut parents_sorted = true;
    let mut prev_parent = 0u32;
    let mut level = Vec::with_capacity(n);
    let mut roots = Vec::new();
    let mut child_count = vec![0u32; n];
    let mut depth = 0usize;
    let mut levels_sorted = true;
    let mut prev_level = 0u8;
    for (i, &p) in parent.iter().enumerate() {
        let l = if p == NO_PARENT {
            roots.push(NodeId(i as u32));
            0u8
        } else {
            if p as usize >= n {
                return Err(BinaryError::Build(BuildError::DanglingParent {
                    child: i,
                    parent: p as usize,
                }));
            }
            if p as usize >= i {
                ordered = false;
                break;
            }
            parents_sorted &= p >= prev_parent;
            prev_parent = p;
            let l = level[p as usize] as usize + 1;
            if l >= TaxonomyBuilder::MAX_LEVELS {
                let (s, e) = name_spans[i];
                return Err(BinaryError::Build(BuildError::TooDeep {
                    name: name_str[s as usize..e as usize].to_owned(),
                }));
            }
            child_count[p as usize] += 1;
            depth = depth.max(l);
            l as u8
        };
        levels_sorted &= l >= prev_level;
        prev_level = l;
        level.push(l);
    }
    if !ordered {
        // Forward reference: re-insert through the builder, which
        // performs full dangling/cycle detection on the whole edge set.
        let names: Vec<String> =
            name_spans.iter().map(|&(s, e)| name_str[s as usize..e as usize].to_owned()).collect();
        let parents: Vec<Option<usize>> =
            parent.iter().map(|&p| (p != NO_PARENT).then_some(p as usize)).collect();
        let taxonomy =
            TaxonomyBuilder::from_edges(label, &names, &parents).map_err(BinaryError::Build)?;
        return Ok(DecodedV2 { taxonomy, name_range: None });
    }

    // CSR child lists: prefix-sum the counts, then place children. When
    // parents are non-decreasing, children grouped by parent are exactly
    // the non-root ids in id order — a sequential fill instead of the
    // cursor-clone + scatter of the general case.
    let mut child_off = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    child_off.push(0);
    for &c in &child_count {
        acc += c;
        child_off.push(acc);
    }
    let child_list: Vec<NodeId> = if parents_sorted {
        let mut list = Vec::with_capacity(acc as usize);
        list.extend(
            parent
                .iter()
                .enumerate()
                .filter(|&(_, &p)| p != NO_PARENT)
                .map(|(i, _)| NodeId(i as u32)),
        );
        list
    } else {
        let mut cursor = child_off.clone();
        let mut list = vec![NodeId(0); acc as usize];
        for (i, &p) in parent.iter().enumerate() {
            if p != NO_PARENT {
                let slot = cursor[p as usize];
                list[slot as usize] = NodeId(i as u32);
                cursor[p as usize] += 1;
            }
        }
        list
    };

    let levels_present = if n == 0 { 0 } else { depth + 1 };
    let by_level: Vec<Vec<NodeId>> = if levels_sorted {
        // Non-decreasing level column: each level is one contiguous id
        // range, located by walking the column once.
        let mut by_level = Vec::with_capacity(levels_present);
        let mut start = 0usize;
        for l in 0..levels_present {
            let mut end = start;
            while end < n && level[end] as usize == l {
                end += 1;
            }
            by_level.push((start..end).map(|i| NodeId(i as u32)).collect());
            start = end;
        }
        by_level
    } else {
        let mut counts = vec![0usize; levels_present];
        for &l in &level {
            counts[l as usize] += 1;
        }
        let mut by_level: Vec<Vec<NodeId>> =
            counts.into_iter().map(Vec::with_capacity).collect();
        for (i, &l) in level.iter().enumerate() {
            by_level[l as usize].push(NodeId(i as u32));
        }
        by_level
    };

    let taxonomy = Taxonomy {
        label,
        name_buf: String::new(),
        name_spans,
        parent,
        level,
        child_off,
        child_list,
        roots,
        by_level,
    };
    Ok(DecodedV2 { taxonomy, name_range: Some(name_start..name_start + name_bytes) })
}

/// Split `n` bytes off the front of the cursor, or fail as truncated.
fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], BinaryError> {
    if buf.len() < n {
        return Err(BinaryError::Truncated);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, BinaryError> {
    take(buf, 2).map(|b| u16::from_le_bytes(b.try_into().expect("take() yielded exactly 2 bytes")))
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, BinaryError> {
    take(buf, 4).map(|b| u32::from_le_bytes(b.try_into().expect("take() yielded exactly 4 bytes")))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, BinaryError> {
    take(buf, 8).map(|b| u64::from_le_bytes(b.try_into().expect("take() yielded exactly 8 bytes")))
}

fn get_string(buf: &mut &[u8]) -> Result<String, BinaryError> {
    let len = get_u32(buf)? as usize;
    let bytes = take(buf, len)?;
    std::str::from_utf8(bytes).map(str::to_owned).map_err(|_| BinaryError::BadUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, TaxonomyBuilder};

    fn sample() -> Taxonomy {
        let mut b = TaxonomyBuilder::new("bin-fixture");
        let r = b.add_root("Root α"); // non-ASCII on purpose
        let a = b.add_child(r, "Child A");
        b.add_child(a, "Grand");
        b.add_child(r, "Child B");
        b.build().unwrap()
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let bytes = t.to_binary();
        let back = Taxonomy::from_binary(&bytes).unwrap();
        validate(&back).unwrap();
        assert_eq!(back.label(), "bin-fixture");
        assert_eq!(back.len(), t.len());
        // The v2 fast path preserves node order exactly.
        for (a, b) in t.ids().zip(back.ids()) {
            assert_eq!(t.name(a), back.name(b));
            assert_eq!(t.level(a), back.level(b));
            assert_eq!(t.parent(a), back.parent(b));
            assert_eq!(t.children(a), back.children(b));
        }
        assert_eq!(t.roots(), back.roots());
        // A second encode→decode is a fixed point byte-for-byte.
        let twice = Taxonomy::from_binary(&back.to_binary()).unwrap();
        assert_eq!(twice.to_binary(), back.to_binary());
    }

    #[test]
    fn v1_still_decodes() {
        let t = sample();
        let bytes = t.to_binary_v1();
        let back = Taxonomy::from_binary(&bytes).unwrap();
        validate(&back).unwrap();
        assert_eq!(back.label(), "bin-fixture");
        // v1 decode goes through from_edges (level-order re-insertion),
        // so compare canonically.
        let canon = |t: &Taxonomy| {
            let mut v: Vec<(String, usize, Option<String>)> = t
                .ids()
                .map(|id| {
                    (
                        t.name(id).to_owned(),
                        t.level(id),
                        t.parent(id).map(|p| t.name(p).to_owned()),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&back), canon(&t));
    }

    #[test]
    fn binary_is_smaller_than_json() {
        // The binary codec's per-node cost is a fixed 8 bytes (parent +
        // offset/length) where JSON pays quotes, commas, and the parent
        // index in decimal — so binary only wins once parent indices are
        // wide, i.e. at realistic node counts. Shape the fixture like a
        // scaled forest (wide levels referencing the previous level)
        // instead of a toy sample.
        let mut b = TaxonomyBuilder::with_capacity("size-fixture", 120_000, 8);
        const W: usize = 30_000;
        let mut prev: Vec<crate::NodeId> =
            (0..W).map(|i| b.add_root(&format!("Node {i}"))).collect();
        for _ in 0..3 {
            prev = prev.iter().map(|&p| b.add_child(p, "Child")).collect();
        }
        let t = b.build().unwrap();
        assert!(t.to_binary().len() < t.to_json().len());
        assert!(t.to_binary_v1().len() < t.to_json().len());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Taxonomy::from_binary(b"nope").unwrap_err(), BinaryError::BadMagic);
        assert_eq!(Taxonomy::from_binary(b"").unwrap_err(), BinaryError::BadMagic);
    }

    #[test]
    fn rejects_wrong_version() {
        let t = sample();
        let mut bytes = t.to_binary().to_vec();
        bytes[4] = 99;
        assert_eq!(Taxonomy::from_binary(&bytes).unwrap_err(), BinaryError::BadVersion(99));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let t = sample();
        for bytes in [t.to_binary(), t.to_binary_v1()] {
            // Chop the buffer at every possible point past the magic; all
            // must fail cleanly (never panic), except the full length.
            for cut in 4..bytes.len() {
                let err = Taxonomy::from_binary(&bytes[..cut]).unwrap_err();
                assert!(
                    matches!(
                        err,
                        BinaryError::Truncated
                            | BinaryError::BadVersion(_)
                            | BinaryError::BadUtf8
                            | BinaryError::BadOffsets
                    ),
                    "cut at {cut}: {err:?}"
                );
            }
            assert!(Taxonomy::from_binary(&bytes).is_ok());
        }
    }

    #[test]
    fn rejects_corrupted_parent_links() {
        let t = sample();
        let mut bytes = t.to_binary().to_vec();
        // Parent array starts after magic(4) + version(2) + label(4+11) +
        // count(8) = 29; point node 0's parent at a bogus index.
        let parent_off = 4 + 2 + 4 + t.label().len() + 8;
        bytes[parent_off..parent_off + 4].copy_from_slice(&1_000_000u32.to_le_bytes());
        assert!(matches!(
            Taxonomy::from_binary(&bytes).unwrap_err(),
            BinaryError::Build(BuildError::DanglingParent { .. })
        ));
    }

    #[test]
    fn forward_parent_reference_falls_back_to_validation() {
        let t = sample();
        let mut bytes = t.to_binary().to_vec();
        // Point node 1's parent at node 3 (a forward reference). The v2
        // fast path cannot resolve it; the from_edges fallback can — but
        // here it forms no valid order change, it's simply accepted and
        // re-levelled (3 is a child of 0, so 1 sits below it).
        let parent_off = 4 + 2 + 4 + t.label().len() + 8;
        bytes[parent_off + 4..parent_off + 8].copy_from_slice(&3u32.to_le_bytes());
        let back = Taxonomy::from_binary(&bytes).unwrap();
        validate(&back).unwrap();
        assert_eq!(back.len(), t.len());
        // And a forward reference that *also* forms a cycle is rejected.
        let mut cyc = t.to_binary().to_vec();
        cyc[parent_off..parent_off + 4].copy_from_slice(&1u32.to_le_bytes());
        cyc[parent_off + 4..parent_off + 8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Taxonomy::from_binary(&cyc).unwrap_err(),
            BinaryError::Build(BuildError::Cycle { .. })
        ));
    }

    #[test]
    fn adversarial_length_prefix_fails_before_allocating() {
        // A tiny buffer declaring a huge node count must be rejected by
        // the remaining-length guard, not by attempting the allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION_V2.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // empty label
        bytes.extend_from_slice(&4_000_000_000u64.to_le_bytes()); // absurd n
        assert_eq!(Taxonomy::from_binary(&bytes).unwrap_err(), BinaryError::Truncated);

        // Same for v1.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&VERSION_V1.to_le_bytes());
        v1.extend_from_slice(&0u32.to_le_bytes());
        v1.extend_from_slice(&(1u64 << 40).to_le_bytes());
        assert_eq!(Taxonomy::from_binary(&v1).unwrap_err(), BinaryError::Truncated);

        // And a v2 name-block length far beyond the buffer: parents and
        // offsets are present, but name_bytes lies.
        let t = sample();
        let mut big = t.to_binary();
        let name_bytes_off = 4 + 2 + 4 + t.label().len() + 8 + t.len() * 4;
        big[name_bytes_off..name_bytes_off + 8].copy_from_slice(&(1u64 << 50).to_le_bytes());
        assert_eq!(Taxonomy::from_binary(&big).unwrap_err(), BinaryError::Truncated);
    }

    #[test]
    fn rejects_bad_offset_table() {
        let t = sample();
        let bytes = t.to_binary();
        let offsets_off = 4 + 2 + 4 + t.label().len() + 8 + t.len() * 4 + 8;
        // Non-monotonic offsets.
        let mut bad = bytes.clone();
        bad[offsets_off + 4..offsets_off + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Taxonomy::from_binary(&bad).unwrap_err(), BinaryError::BadOffsets);
        // First offset must be 0.
        let mut bad = bytes.clone();
        bad[offsets_off..offsets_off + 4].copy_from_slice(&1u32.to_le_bytes());
        assert_eq!(Taxonomy::from_binary(&bad).unwrap_err(), BinaryError::BadOffsets);
        // Splitting the 2-byte "α" in "Root α" (span 0..7, α at 5..7).
        let mut bad = bytes;
        bad[offsets_off + 4..offsets_off + 8].copy_from_slice(&6u32.to_le_bytes());
        assert_eq!(Taxonomy::from_binary(&bad).unwrap_err(), BinaryError::BadOffsets);
    }

    #[test]
    fn empty_taxonomy_round_trips() {
        let t = TaxonomyBuilder::new("empty").build().unwrap();
        let back = Taxonomy::from_binary(&t.to_binary()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.label(), "empty");
        let back1 = Taxonomy::from_binary(&t.to_binary_v1()).unwrap();
        assert!(back1.is_empty());
    }
}
