//! Compact binary serialization.
//!
//! The JSON/TSV formats are human-friendly but bulky: the full NCBI
//! forest (2.19M nodes) is ~90 MB of JSON. This length-prefixed binary
//! codec stores the same flat representation in roughly `names + 5
//! bytes/node`, encodes/decodes in one pass, and validates structure on
//! load (via the same `from_edges` checks as every other loader).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   : b"TAXG"
//! version : u16 (currently 1)
//! label   : u32 length + utf-8 bytes
//! n       : u64 node count
//! parents : n × u32   (u32::MAX = root)
//! names   : n × (u32 length + utf-8 bytes)
//! ```

use crate::arena::Taxonomy;
use crate::builder::{BuildError, TaxonomyBuilder};
use std::fmt;

const MAGIC: &[u8; 4] = b"TAXG";
const VERSION: u16 = 1;
const ROOT_SENTINEL: u32 = u32::MAX;

/// Binary decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The buffer ended before the declared content.
    Truncated,
    /// A name was not valid UTF-8.
    BadUtf8,
    /// Structure failed validation after decode.
    Build(BuildError),
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::BadMagic => write!(f, "not a TAXG binary taxonomy"),
            BinaryError::BadVersion(v) => write!(f, "unsupported TAXG version {v}"),
            BinaryError::Truncated => write!(f, "buffer ends before declared content"),
            BinaryError::BadUtf8 => write!(f, "name is not valid UTF-8"),
            BinaryError::Build(e) => write!(f, "structure error: {e}"),
        }
    }
}

impl std::error::Error for BinaryError {}

impl Taxonomy {
    /// Encode into the TAXG binary format.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(
            4 + 2 + 4 + self.label().len() + 8 + self.len() * 9 + self.name_bytes(),
        );
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.label().len() as u32).to_le_bytes());
        buf.extend_from_slice(self.label().as_bytes());
        buf.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for id in self.ids() {
            let raw = self.parent(id).map_or(ROOT_SENTINEL, |p| p.raw());
            buf.extend_from_slice(&raw.to_le_bytes());
        }
        for id in self.ids() {
            let name = self.name(id);
            buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
        }
        buf
    }

    /// Decode from the TAXG binary format (with full structural
    /// validation).
    pub fn from_binary(bytes: &[u8]) -> Result<Self, BinaryError> {
        let mut buf = bytes;
        if buf.len() < 4 || &buf[..4] != MAGIC {
            return Err(BinaryError::BadMagic);
        }
        buf = &buf[4..];
        let version = get_u16(&mut buf)?;
        if version != VERSION {
            return Err(BinaryError::BadVersion(version));
        }
        let label = get_string(&mut buf)?;
        let n = get_u64(&mut buf)? as usize;
        if buf.len() < n.checked_mul(4).ok_or(BinaryError::Truncated)? {
            return Err(BinaryError::Truncated);
        }
        let mut parents = Vec::with_capacity(n);
        for _ in 0..n {
            let raw = get_u32(&mut buf)?;
            parents.push((raw != ROOT_SENTINEL).then_some(raw as usize));
        }
        let mut names = Vec::with_capacity(n);
        for _ in 0..n {
            names.push(get_string(&mut buf)?);
        }
        TaxonomyBuilder::from_edges(label, &names, &parents).map_err(BinaryError::Build)
    }
}

/// Split `n` bytes off the front of the cursor, or fail as truncated.
fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], BinaryError> {
    if buf.len() < n {
        return Err(BinaryError::Truncated);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, BinaryError> {
    take(buf, 2).map(|b| u16::from_le_bytes(b.try_into().expect("take() yielded exactly 2 bytes")))
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, BinaryError> {
    take(buf, 4).map(|b| u32::from_le_bytes(b.try_into().expect("take() yielded exactly 4 bytes")))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, BinaryError> {
    take(buf, 8).map(|b| u64::from_le_bytes(b.try_into().expect("take() yielded exactly 8 bytes")))
}

fn get_string(buf: &mut &[u8]) -> Result<String, BinaryError> {
    let len = get_u32(buf)? as usize;
    let bytes = take(buf, len)?;
    std::str::from_utf8(bytes).map(str::to_owned).map_err(|_| BinaryError::BadUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, TaxonomyBuilder};

    fn sample() -> Taxonomy {
        let mut b = TaxonomyBuilder::new("bin-fixture");
        let r = b.add_root("Root α"); // non-ASCII on purpose
        let a = b.add_child(r, "Child A");
        b.add_child(a, "Grand");
        b.add_child(r, "Child B");
        b.build().unwrap()
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let bytes = t.to_binary();
        let back = Taxonomy::from_binary(&bytes).unwrap();
        validate(&back).unwrap();
        assert_eq!(back.label(), "bin-fixture");
        assert_eq!(back.len(), t.len());
        // Loading re-inserts nodes level-wise, so compare canonically.
        let canon = |t: &Taxonomy| {
            let mut v: Vec<(String, usize, Option<String>)> = t
                .ids()
                .map(|id| {
                    (
                        t.name(id).to_owned(),
                        t.level(id),
                        t.parent(id).map(|p| t.name(p).to_owned()),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&back), canon(&t));
        // A second encode→decode is a fixed point byte-for-byte.
        let twice = Taxonomy::from_binary(&back.to_binary()).unwrap();
        assert_eq!(twice.to_binary(), back.to_binary());
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let t = sample();
        assert!(t.to_binary().len() < t.to_json().len());
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Taxonomy::from_binary(b"nope").unwrap_err(), BinaryError::BadMagic);
        assert_eq!(Taxonomy::from_binary(b"").unwrap_err(), BinaryError::BadMagic);
    }

    #[test]
    fn rejects_wrong_version() {
        let t = sample();
        let mut bytes = t.to_binary().to_vec();
        bytes[4] = 99;
        assert_eq!(Taxonomy::from_binary(&bytes).unwrap_err(), BinaryError::BadVersion(99));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let t = sample();
        let bytes = t.to_binary().to_vec();
        // Chop the buffer at every possible point past the magic; all
        // must fail cleanly (never panic), except the full length.
        for cut in 4..bytes.len() {
            let err = Taxonomy::from_binary(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, BinaryError::Truncated | BinaryError::BadVersion(_) | BinaryError::BadUtf8),
                "cut at {cut}: {err:?}"
            );
        }
        assert!(Taxonomy::from_binary(&bytes).is_ok());
    }

    #[test]
    fn rejects_corrupted_parent_links() {
        let t = sample();
        let mut bytes = t.to_binary().to_vec();
        // Parent array starts after magic(4) + version(2) + label(4+11) +
        // count(8) = 29; point node 0's parent at a bogus index.
        let parent_off = 4 + 2 + 4 + t.label().len() + 8;
        bytes[parent_off..parent_off + 4].copy_from_slice(&1_000_000u32.to_le_bytes());
        assert!(matches!(
            Taxonomy::from_binary(&bytes).unwrap_err(),
            BinaryError::Build(BuildError::DanglingParent { .. })
        ));
    }

    #[test]
    fn empty_taxonomy_round_trips() {
        let t = TaxonomyBuilder::new("empty").build().unwrap();
        let back = Taxonomy::from_binary(&t.to_binary()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.label(), "empty");
    }
}
