//! Content-keyed subtree partitioning for sharded scale-out.
//!
//! Splitting a large taxonomy (NCBI is 2.19M nodes at full fidelity)
//! across shard workers only preserves the repo's byte-identical
//! determinism contract if the split itself is deterministic: a node's
//! shard must be a pure function of taxonomy *content*, never of thread
//! identity, enumeration timing, or how many shards happen to exist.
//!
//! [`SubtreePartition`] implements that rule in two steps:
//!
//! 1. Every node is assigned to one of a **fixed number of slots**
//!    (virtual partitions). The slot is keyed by the node's *anchor
//!    subtree*: its ancestor at [`ANCHOR_LEVEL`] (roots key on
//!    themselves), hashed by `(root name, anchor name)` content via the
//!    snapshot checksum. Whole subtrees therefore travel together —
//!    siblings-under-one-anchor never split — and the assignment never
//!    looks at node indices, arena order, or wall clock.
//! 2. A shard *count* never re-keys anything: shard `s` of `S` simply
//!    owns the fixed slots `{p : p mod S == s}`. Changing `S` regroups
//!    the same slots; it cannot move a node between slots. This is the
//!    property that makes merged shard reports byte-identical across
//!    shard counts (see `taxoglimpse_core::shard`).
//!
//! Same-named anchors under same-named roots hash to the same slot;
//! that is allowed (slots do not need to be injective, only
//! deterministic and exhaustive).

use crate::arena::Taxonomy;
use crate::node::NodeId;
use crate::snapshot::checksum;

/// The ancestor level whose subtrees are the unit of partitioning.
/// Level-1 nodes (children of roots) are the natural cut: big
/// taxonomies have one or a handful of roots but hundreds of level-1
/// subtrees, so slots stay balanced without splitting any deep subtree.
pub const ANCHOR_LEVEL: usize = 1;

/// A content-keyed assignment of every node to one of `num_slots`
/// virtual partitions. See the module docs for the determinism
/// argument.
#[derive(Debug, Clone)]
pub struct SubtreePartition {
    num_slots: usize,
    /// Slot per node, indexed by the node's raw arena index.
    slots: Vec<u32>,
}

/// Hash `(root name, anchor name)` into a slot. The 0x1F separator
/// (ASCII unit separator) keeps `("ab", "c")` and `("a", "bc")`
/// distinct.
fn slot_for_key(root_name: &str, anchor_name: &str, num_slots: usize) -> u32 {
    let mut buf = Vec::with_capacity(root_name.len() + anchor_name.len() + 1);
    buf.extend_from_slice(root_name.as_bytes());
    buf.push(0x1F);
    buf.extend_from_slice(anchor_name.as_bytes());
    (checksum(&buf) % num_slots as u64) as u32
}

impl SubtreePartition {
    /// Partition `taxonomy` into `num_slots` slots (clamped to ≥ 1).
    ///
    /// Every node receives exactly one slot: roots key on their own
    /// name, and every node at level ≥ [`ANCHOR_LEVEL`] inherits the
    /// slot of its level-[`ANCHOR_LEVEL`] ancestor, so each anchor
    /// subtree is contiguous in exactly one slot.
    pub fn new(taxonomy: &Taxonomy, num_slots: usize) -> Self {
        let num_slots = num_slots.max(1);
        let mut slots = vec![0u32; taxonomy.len()];
        let mut stack: Vec<NodeId> = Vec::new();
        for &root in taxonomy.roots() {
            let root_name = taxonomy.name(root);
            slots[root.index()] = slot_for_key(root_name, root_name, num_slots);
            for &anchor in taxonomy.children(root) {
                let slot = slot_for_key(root_name, taxonomy.name(anchor), num_slots);
                // Iterative DFS: anchor subtrees can hold millions of
                // nodes, but the stack only ever holds one root-to-leaf
                // frontier's siblings.
                stack.push(anchor);
                while let Some(node) = stack.pop() {
                    slots[node.index()] = slot;
                    stack.extend_from_slice(taxonomy.children(node));
                }
            }
        }
        SubtreePartition { num_slots, slots }
    }

    /// Number of slots nodes are partitioned into.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// The slot owning `node`.
    pub fn slot_of(&self, node: NodeId) -> usize {
        self.slots[node.index()] as usize
    }

    /// The shard (out of `num_shards`, clamped to ≥ 1) owning `node`:
    /// shard `s` owns every slot congruent to `s` modulo the shard
    /// count. Changing `num_shards` regroups slots but never re-keys
    /// them.
    pub fn shard_of(&self, node: NodeId, num_shards: usize) -> usize {
        self.slot_of(node) % num_shards.max(1)
    }

    /// Node count per slot (length [`Self::num_slots`]).
    pub fn slot_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_slots];
        for &slot in &self.slots {
            sizes[slot as usize] += 1;
        }
        sizes
    }

    /// Number of slots that own at least one node.
    pub fn occupied_slots(&self) -> usize {
        self.slot_sizes().iter().filter(|&&n| n > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    /// A three-root forest with enough level-1 anchors to spread over
    /// slots, and depth to exercise inheritance.
    fn forest() -> Taxonomy {
        let mut b = TaxonomyBuilder::new("partition-fixture");
        for r in 0..3 {
            let root = b.add_root(&format!("root-{r}"));
            for a in 0..8 {
                let anchor = b.add_child(root, &format!("anchor-{r}-{a}"));
                for c in 0..4 {
                    let child = b.add_child(anchor, &format!("leaf-{r}-{a}-{c}"));
                    b.add_child(child, &format!("deep-{r}-{a}-{c}"));
                }
            }
        }
        b.build().expect("fixture forest builds cleanly")
    }

    #[test]
    fn every_node_gets_exactly_one_valid_slot() {
        let t = forest();
        let p = SubtreePartition::new(&t, 16);
        for id in t.ids() {
            assert!(p.slot_of(id) < 16);
        }
        assert_eq!(p.slot_sizes().iter().sum::<usize>(), t.len());
    }

    #[test]
    fn descendants_inherit_their_anchor_slot() {
        let t = forest();
        let p = SubtreePartition::new(&t, 16);
        for id in t.ids() {
            if t.level(id) > ANCHOR_LEVEL {
                let parent = t.parent(id).expect("level > 1 nodes have parents");
                assert_eq!(
                    p.slot_of(id),
                    p.slot_of(parent),
                    "node {id} split away from its subtree"
                );
            }
        }
    }

    #[test]
    fn assignment_is_reproducible_and_content_keyed() {
        let t = forest();
        let a = SubtreePartition::new(&t, 64);
        let b = SubtreePartition::new(&t, 64);
        for id in t.ids() {
            assert_eq!(a.slot_of(id), b.slot_of(id));
        }
        // A structurally identical rebuild (fresh arena, same content)
        // keys identically: the partition sees names, not indices.
        let t2 = forest();
        let c = SubtreePartition::new(&t2, 64);
        for id in t.ids() {
            assert_eq!(a.slot_of(id), c.slot_of(id));
        }
    }

    #[test]
    fn shards_cover_all_nodes_disjointly_for_every_count() {
        let t = forest();
        let p = SubtreePartition::new(&t, 64);
        for shards in [1usize, 2, 3, 8] {
            let mut owned = vec![0usize; t.len()];
            for s in 0..shards {
                for id in t.ids() {
                    if p.shard_of(id, shards) == s {
                        owned[id.index()] += 1;
                    }
                }
            }
            assert!(
                owned.iter().all(|&n| n == 1),
                "{shards} shards must own every node exactly once"
            );
        }
    }

    #[test]
    fn shard_count_never_rekeys_slots() {
        let t = forest();
        let p = SubtreePartition::new(&t, 64);
        // The slot is fixed; only the slot → shard grouping changes
        // with the count.
        for id in t.ids() {
            let slot = p.slot_of(id);
            for shards in [1usize, 2, 8] {
                assert_eq!(p.shard_of(id, shards), slot % shards);
            }
        }
    }

    #[test]
    fn single_slot_degenerates_gracefully() {
        let t = forest();
        let p = SubtreePartition::new(&t, 1);
        assert_eq!(p.num_slots(), 1);
        assert_eq!(p.occupied_slots(), 1);
        for id in t.ids() {
            assert_eq!(p.slot_of(id), 0);
        }
        // Clamping: zero requested slots behaves as one.
        assert_eq!(SubtreePartition::new(&t, 0).num_slots(), 1);
    }
}
