//! Structural invariant checks.
//!
//! A well-formed taxonomy satisfies:
//!
//! 1. every non-root node's level is its parent's level + 1;
//! 2. the child lists are exactly the inverse of the parent array;
//! 3. the root list contains exactly the parentless nodes;
//! 4. the per-level index partitions the node set;
//! 5. parent edges are acyclic (implied by 1, checked explicitly anyway).

use crate::arena::{Taxonomy, NO_PARENT};
use crate::node::NodeId;
use std::fmt;

/// A violated structural invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// `node.level != parent.level + 1`.
    LevelMismatch {
        /// The inconsistent node.
        node: NodeId,
        /// Parent level + 1.
        expected: usize,
        /// The level actually stored.
        actual: usize,
    },
    /// `node` is missing from its parent's child list.
    MissingChildLink {
        /// The parent whose child list is incomplete.
        parent: NodeId,
        /// The missing child.
        node: NodeId,
    },
    /// A child list contains a node whose parent pointer disagrees.
    SpuriousChildLink {
        /// The parent whose child list has the spurious entry.
        parent: NodeId,
        /// The disagreeing child.
        node: NodeId,
    },
    /// The root list disagrees with the parent array.
    RootListMismatch,
    /// The per-level index does not partition the node set.
    LevelIndexMismatch {
        /// The offending level.
        level: usize,
    },
    /// Walking parent edges from `node` did not terminate.
    Cycle {
        /// The starting node of the non-terminating walk.
        node: NodeId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::LevelMismatch { node, expected, actual } => {
                write!(f, "{node}: level {actual}, expected {expected}")
            }
            ValidationError::MissingChildLink { parent, node } => {
                write!(f, "{node} not in child list of {parent}")
            }
            ValidationError::SpuriousChildLink { parent, node } => {
                write!(f, "{node} in child list of {parent} but parent pointer disagrees")
            }
            ValidationError::RootListMismatch => write!(f, "root list disagrees with parent array"),
            ValidationError::LevelIndexMismatch { level } => {
                write!(f, "per-level index wrong at level {level}")
            }
            ValidationError::Cycle { node } => write!(f, "parent walk from {node} cycles"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check all structural invariants, returning the first violation found.
pub fn validate(t: &Taxonomy) -> Result<(), ValidationError> {
    let n = t.len();

    // (1) level consistency + (5) acyclicity: a parent must have a strictly
    // smaller level, so any parent walk strictly decreases and terminates.
    for id in t.ids() {
        match t.parent(id) {
            None => {
                if t.level(id) != 0 {
                    return Err(ValidationError::LevelMismatch {
                        node: id,
                        expected: 0,
                        actual: t.level(id),
                    });
                }
            }
            Some(p) => {
                let expected = t.level(p) + 1;
                if t.level(id) != expected {
                    return Err(ValidationError::LevelMismatch {
                        node: id,
                        expected,
                        actual: t.level(id),
                    });
                }
            }
        }
    }

    // (2) child lists are the inverse of the parent array.
    for id in t.ids() {
        if let Some(p) = t.parent(id) {
            if !t.children(p).contains(&id) {
                return Err(ValidationError::MissingChildLink { parent: p, node: id });
            }
        }
        for &c in t.children(id) {
            if t.parent(c) != Some(id) {
                return Err(ValidationError::SpuriousChildLink { parent: id, node: c });
            }
        }
    }
    let child_total: usize = t.ids().map(|id| t.children(id).len()).sum();
    let nonroot_total = t.ids().filter(|&id| t.parent(id).is_some()).count();
    if child_total != nonroot_total {
        return Err(ValidationError::RootListMismatch);
    }

    // (3) root list.
    let roots_from_parents: Vec<NodeId> =
        t.ids().filter(|&id| t.parent[id.index()] == NO_PARENT).collect();
    if roots_from_parents != t.roots() {
        return Err(ValidationError::RootListMismatch);
    }

    // (4) per-level index partitions the node set.
    let mut seen = vec![false; n];
    for level in 0..t.num_levels() {
        for &id in t.nodes_at_level(level) {
            if t.level(id) != level || seen[id.index()] {
                return Err(ValidationError::LevelIndexMismatch { level });
            }
            seen[id.index()] = true;
        }
    }
    if seen.iter().any(|&s| !s) {
        return Err(ValidationError::LevelIndexMismatch { level: 0 });
    }

    // (5) explicit bounded parent walk (defense in depth).
    for id in t.ids() {
        let mut steps = 0usize;
        let mut cur = id;
        while let Some(p) = t.parent(cur) {
            steps += 1;
            if steps > n {
                return Err(ValidationError::Cycle { node: id });
            }
            cur = p;
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;

    fn sample() -> Taxonomy {
        let mut b = TaxonomyBuilder::new("t");
        let r = b.add_root("r");
        let a = b.add_child(r, "a");
        b.add_child(a, "b");
        b.add_child(r, "c");
        b.build().unwrap()
    }

    #[test]
    fn well_formed_passes() {
        validate(&sample()).unwrap();
    }

    #[test]
    fn detects_level_mismatch() {
        let mut t = sample();
        t.level[2] = 5;
        assert!(matches!(validate(&t), Err(ValidationError::LevelMismatch { .. })));
    }

    #[test]
    fn detects_broken_child_link() {
        let mut t = sample();
        // Point node 3 ("c") at node 1 ("a") without fixing child lists.
        t.parent[3] = 1;
        t.level[3] = 2;
        assert!(matches!(
            validate(&t),
            Err(ValidationError::MissingChildLink { .. } | ValidationError::SpuriousChildLink { .. })
        ));
    }

    #[test]
    fn detects_root_list_mismatch() {
        let mut t = sample();
        t.roots.pop();
        assert!(matches!(validate(&t), Err(ValidationError::RootListMismatch)));
    }

    #[test]
    fn detects_level_index_corruption() {
        let mut t = sample();
        let moved = t.by_level[1].pop().unwrap();
        t.by_level[0].push(moved);
        assert!(matches!(validate(&t), Err(ValidationError::LevelIndexMismatch { .. })));
    }

    #[test]
    fn empty_is_valid() {
        let t = TaxonomyBuilder::new("e").build().unwrap();
        validate(&t).unwrap();
    }
}
