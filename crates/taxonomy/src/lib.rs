//! # taxoglimpse-taxonomy
//!
//! Arena-backed taxonomy (Is-A forest) substrate for the TaxoGlimpse
//! benchmark reproduction.
//!
//! A [`Taxonomy`] is a forest of rooted trees where each node carries a
//! display name and a level (roots are level 0, children of a level-`k`
//! node are level `k + 1`). The structure supports the exact queries the
//! benchmark's question-design methodology needs:
//!
//! * O(1) parent lookup ([`Taxonomy::parent`]),
//! * ancestor chains up to the root ([`Taxonomy::ancestors`]),
//! * siblings and **uncles** — siblings of the parent, the paper's hard
//!   negatives ([`Taxonomy::siblings`], [`Taxonomy::uncles`]),
//! * per-level node indexes ([`Taxonomy::nodes_at_level`]),
//! * whole-forest statistics matching the paper's Table 1
//!   ([`stats::TaxonomyStats`]).
//!
//! Construction goes through [`TaxonomyBuilder`], which enforces the
//! structural invariants (no cycles, consistent levels); [`validate`]
//! re-checks them on any instance.
//!
//! ```
//! use taxoglimpse_taxonomy::TaxonomyBuilder;
//!
//! let mut b = TaxonomyBuilder::new("demo");
//! let root = b.add_root("Electronics");
//! let audio = b.add_child(root, "Audio");
//! let hp = b.add_child(audio, "Headphones");
//! let tax = b.build().unwrap();
//!
//! assert_eq!(tax.level(hp), 2);
//! assert_eq!(tax.parent(hp), Some(audio));
//! assert_eq!(tax.ancestors(hp), vec![audio, root]);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod binary;
pub mod builder;
pub mod diff;
pub mod edit;
pub mod index;
pub mod io;
pub mod merge;
pub mod node;
pub mod partition;
pub mod reason;
pub mod snapshot;
pub mod stats;
pub mod traversal;
pub mod validate;

pub use arena::Taxonomy;
pub use builder::{BuildError, TaxonomyBuilder};
pub use index::NameIndex;
pub use merge::merge;
pub use node::NodeId;
pub use partition::SubtreePartition;
pub use snapshot::SnapshotStore;
pub use stats::TaxonomyStats;
pub use validate::{validate, ValidationError};
