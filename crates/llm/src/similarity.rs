//! Interned surface-form evidence: the allocation-free fast path behind
//! [`crate::knowledge::trigram_similarity`] and friends.
//!
//! The knowledge model consults surface evidence up to five times per
//! question — child↔candidate trigram similarity, whole-name
//! containment, head-noun matches — and a Tables 5–7 grid asks hundreds
//! of thousands of questions over a vocabulary of at most a few
//! thousand distinct names per dataset. Recomputing a name's lowercase
//! form and sorted trigram set on every call (an allocation, a byte
//! pass, a sort) is the single hottest allocation site in the whole
//! query path. [`SimilarityCache`] computes both once per unique name
//! and serves every subsequent query from borrowed slices.
//!
//! Results are *definitionally* identical to the direct functions: the
//! cache stores exactly the intermediates the direct code computes
//! (`tests` plus `tests/perf_equivalence.rs` fuzz the equivalence), so
//! determinism — the repo's core invariant — is untouched.
//!
//! The cache is thread-local (see [`with_cache`]): grid workers never
//! contend on a lock, and a `KnowledgeModel` stays `Copy`. Memory is
//! bounded by [`MAX_ENTRIES`]; overflowing vocabularies (no real
//! taxonomy comes close) drop the cache and rebuild.

use std::cell::RefCell;
// lint:allow(D001, interner is lookup-only: entries are keyed by exact name and never iterated, so hash order cannot reach any output)
use std::collections::HashMap;
use std::rc::Rc;

/// Hard cap on interned names per thread before the cache resets.
pub const MAX_ENTRIES: usize = 1 << 20;

/// A name's cached derived forms.
#[derive(Debug)]
pub struct NameEntry {
    lower: String,
    trigrams: Box<[[u8; 3]]>,
}

impl NameEntry {
    /// Compute the derived forms for one name (the slow path, run once
    /// per unique name).
    fn compute(s: &str) -> NameEntry {
        let lower = s.to_ascii_lowercase();
        let bytes = lower.as_bytes();
        let trigrams = if bytes.len() < 3 {
            Box::default()
        } else {
            let mut grams: Vec<[u8; 3]> = bytes.windows(3).map(|w| [w[0], w[1], w[2]]).collect();
            grams.sort_unstable();
            grams.dedup();
            grams.into_boxed_slice()
        };
        NameEntry { lower, trigrams }
    }

    /// The ASCII-lowercased form.
    pub fn lower(&self) -> &str {
        &self.lower
    }

    /// The sorted, deduplicated character trigrams of the lowercased
    /// form (empty for names under three bytes).
    pub fn trigrams(&self) -> &[[u8; 3]] {
        &self.trigrams
    }
}

/// Per-thread interner from name to [`NameEntry`].
#[derive(Debug, Default)]
pub struct SimilarityCache {
    // lint:allow(D001, hot-path interner: O(1) probes beat BTreeMap here and the map is never iterated)
    map: RefCell<HashMap<Box<str>, Rc<NameEntry>>>,
}

impl SimilarityCache {
    /// An empty cache.
    pub fn new() -> SimilarityCache {
        SimilarityCache::default()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.map.borrow().len()
    }

    /// Whether no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern `s`, computing its derived forms on first sight.
    pub fn entry(&self, s: &str) -> Rc<NameEntry> {
        if let Some(e) = self.map.borrow().get(s) {
            return Rc::clone(e);
        }
        let entry = Rc::new(NameEntry::compute(s));
        let mut map = self.map.borrow_mut();
        if map.len() >= MAX_ENTRIES {
            map.clear();
        }
        map.insert(Box::from(s), Rc::clone(&entry));
        entry
    }

    /// Character-trigram Jaccard similarity, case-insensitive —
    /// identical to [`crate::knowledge::trigram_similarity`], served
    /// from the interned sets.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let ea = self.entry(a);
        let eb = self.entry(b);
        if Rc::ptr_eq(&ea, &eb) {
            return 1.0;
        }
        let (ta, tb) = (ea.trigrams(), eb.trigrams());
        if ta.is_empty() || tb.is_empty() {
            // Short-string fallback: exact match ignoring ASCII case.
            return if ea.lower() == eb.lower() { 1.0 } else { 0.0 };
        }
        let mut intersection = 0usize;
        let mut i = 0;
        let mut j = 0;
        while i < ta.len() && j < tb.len() {
            match ta[i].cmp(&tb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    intersection += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = ta.len() + tb.len() - intersection;
        intersection as f64 / union as f64
    }

    /// Whole-name containment as the knowledge model defines it:
    /// `concept` is at least four bytes and its lowercase form appears
    /// in `name`'s lowercase form.
    pub fn contains_name(&self, name: &str, concept: &str) -> bool {
        concept.len() >= 4 && self.entry(name).lower().contains(self.entry(concept).lower())
    }

    /// Head-noun match as the knowledge model defines it: the last
    /// space-separated word of `concept`, singular-ized by stripping a
    /// trailing lowercase `s`, appears (length ≥ 3) in `name`,
    /// case-insensitively.
    pub fn head_matches(&self, name: &str, concept: &str) -> bool {
        let head_start = concept.rfind(' ').map(|i| i + 1).unwrap_or(0);
        let head = &concept[head_start..];
        // Strip the suffix on the *original* spelling — a trailing
        // uppercase `S` is deliberately not stripped by the reference
        // implementation — then reuse the cached lowercase bytes, which
        // align byte-for-byte with the original (ASCII lowering
        // preserves length).
        let head = head.strip_suffix('s').unwrap_or(head);
        if head.len() < 3 {
            return false;
        }
        let concept_entry = self.entry(concept);
        let head_lower = &concept_entry.lower()[head_start..head_start + head.len()];
        self.entry(name).lower().contains(head_lower)
    }
}

thread_local! {
    static THREAD_CACHE: SimilarityCache = SimilarityCache::new();
}

/// Run `f` against this thread's interner. Grid workers each get their
/// own cache, so the hot path never takes a lock; within one worker a
/// dataset's vocabulary is interned once and reused for every model,
/// level, and prompt setting it evaluates.
pub fn with_cache<R>(f: impl FnOnce(&SimilarityCache) -> R) -> R {
    THREAD_CACHE.with(f)
}

/// Cached [`crate::knowledge::trigram_similarity`].
pub fn cached_similarity(a: &str, b: &str) -> f64 {
    with_cache(|c| c.similarity(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::trigram_similarity;

    /// Reference copies of the knowledge model's private helpers, so a
    /// drift in either place fails loudly here.
    fn direct_contains(name: &str, concept: &str) -> bool {
        concept.len() >= 4 && name.to_ascii_lowercase().contains(&concept.to_ascii_lowercase())
    }

    fn direct_head_matches(name: &str, concept: &str) -> bool {
        let head = concept.split(' ').next_back().unwrap_or(concept);
        let head = head.strip_suffix('s').unwrap_or(head);
        if head.len() < 3 {
            return false;
        }
        name.to_ascii_lowercase().contains(&head.to_ascii_lowercase())
    }

    const CORPUS: [&str; 14] = [
        "",
        "a",
        "ab",
        "abc",
        "ABC",
        "Verbascum chaixii",
        "Verbascum",
        "Wireless Speakers",
        "Audio",
        "CARS",
        "cars",
        "Pencils",
        "acute cardiac lesion AE",
        "naïve café names",
    ];

    #[test]
    fn similarity_matches_direct_on_corpus() {
        let cache = SimilarityCache::new();
        for a in CORPUS {
            for b in CORPUS {
                assert_eq!(
                    cache.similarity(a, b),
                    trigram_similarity(a, b),
                    "similarity({a:?}, {b:?})"
                );
            }
        }
    }

    #[test]
    fn containment_and_heads_match_direct_on_corpus() {
        let cache = SimilarityCache::new();
        for a in CORPUS {
            for b in CORPUS {
                assert_eq!(cache.contains_name(a, b), direct_contains(a, b), "contains({a:?}, {b:?})");
                assert_eq!(
                    cache.head_matches(a, b),
                    direct_head_matches(a, b),
                    "head_matches({a:?}, {b:?})"
                );
            }
        }
    }

    #[test]
    fn names_are_interned_once() {
        let cache = SimilarityCache::new();
        cache.similarity("Verbascum chaixii", "Verbascum");
        cache.similarity("Verbascum chaixii", "Silene");
        assert_eq!(cache.len(), 3);
        let a = cache.entry("Verbascum");
        let b = cache.entry("Verbascum");
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn uppercase_trailing_s_is_not_stripped() {
        // The reference strips only a lowercase `s`; "CARS" keeps it
        // and must therefore not head-match "three car garage".
        let cache = SimilarityCache::new();
        assert!(!cache.head_matches("three car garage", "CARS"));
        assert!(cache.head_matches("three cars here", "CARS"));
        assert!(cache.head_matches("Compact Pencil X137", "Pencils"));
    }

    #[test]
    fn thread_cache_is_reused() {
        with_cache(|c| {
            c.similarity("alpha beta", "beta gamma");
        });
        let before = with_cache(SimilarityCache::len);
        assert_eq!(cached_similarity("alpha beta", "beta gamma"), trigram_similarity("alpha beta", "beta gamma"));
        assert_eq!(with_cache(SimilarityCache::len), before);
    }
}
