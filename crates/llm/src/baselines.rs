//! Non-LLM baselines.
//!
//! The paper frames LLMs against "traditional taxonomy learning
//! approaches". These baselines make that comparison concrete inside the
//! same harness — each implements [`LanguageModel`] so every dataset,
//! prompt and metric works unchanged:
//!
//! * [`RandomBaseline`] — coin-flip TF, uniform MCQ. Calibrates the
//!   floor (0.5 TF / 0.25 MCQ) that several real models hover near on
//!   specialized taxonomies.
//! * [`MajorityYesBaseline`] — always Yes: exploits the balanced
//!   positives, scoring ~0.5 on TF; a sanity floor.
//! * [`LexicalBaseline`] — Hearst-style surface matching: Yes iff the
//!   child's name embeds (or heavily overlaps) the candidate's.
//! * [`NgramVectorBaseline`] — a small character-n-gram vector-space
//!   model with an inverted index: names are embedded into hashed
//!   n-gram space; Is-A is accepted when cosine similarity clears a
//!   threshold, MCQ picks the nearest option. This is the "statistical
//!   IR" baseline a pre-LLM system would actually use.

use crate::similarity::{self, SimilarityCache};
use taxoglimpse_core::model::{LanguageModel, ModelError, Query, Response};
use taxoglimpse_core::question::QuestionBody;
use taxoglimpse_synth::rng::{hash_str, mix64};

/// Coin-flip / uniform-choice baseline (deterministic per question).
#[derive(Debug, Clone, Copy)]
pub struct RandomBaseline {
    seed: u64,
}

impl RandomBaseline {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        RandomBaseline { seed }
    }
}

impl LanguageModel for RandomBaseline {
    fn name(&self) -> &str {
        "random"
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        let h = mix64(hash_str(self.seed, &query.prompt));
        let text = match &query.question.body {
            QuestionBody::TrueFalse { .. } => {
                if h & 1 == 0 {
                    "Yes.".to_owned()
                } else {
                    "No.".to_owned()
                }
            }
            QuestionBody::Mcq { .. } => format!("{})", (b'A' + (h % 4) as u8) as char),
            // Uniform over the shown children plus the abstain slot.
            QuestionBody::Sibling { options, .. } => {
                format!("{})", (b'A' + (h % (options.len() as u64 + 1)) as u8) as char)
            }
        };
        Ok(Response::new(text))
    }
}

/// Always answers Yes (TF) / A (MCQ).
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityYesBaseline;

impl LanguageModel for MajorityYesBaseline {
    fn name(&self) -> &str {
        "always-yes"
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        Ok(Response::new(match &query.question.body {
            QuestionBody::TrueFalse { .. } => "Yes.".to_owned(),
            QuestionBody::Mcq { .. } | QuestionBody::Sibling { .. } => "A)".to_owned(),
        }))
    }
}

/// Hearst-style lexical matcher: substring containment or high word
/// overlap between child and candidate means Is-A.
#[derive(Debug, Clone, Copy)]
pub struct LexicalBaseline {
    /// Word-overlap fraction above which the relation is accepted.
    pub overlap_threshold: f64,
}

impl Default for LexicalBaseline {
    fn default() -> Self {
        LexicalBaseline { overlap_threshold: 0.5 }
    }
}

impl LexicalBaseline {
    /// Lowercased forms come from the interner, so repeated names across
    /// a batch (or a whole dataset level) lowercase exactly once.
    fn matches(&self, cache: &SimilarityCache, child: &str, candidate: &str) -> bool {
        let child_entry = cache.entry(child);
        let candidate_entry = cache.entry(candidate);
        let (cl, al) = (child_entry.lower(), candidate_entry.lower());
        if al.len() >= 4 && cl.contains(al) {
            return true;
        }
        let cw: Vec<&str> = cl.split(' ').collect();
        let aw: Vec<&str> = al.split(' ').collect();
        if aw.is_empty() {
            return false;
        }
        let shared = aw.iter().filter(|w| cw.contains(w)).count();
        shared as f64 / aw.len() as f64 >= self.overlap_threshold
    }

    /// Answer one query against an explicit similarity cache — the
    /// shared core of `answer` and `answer_batch`. `cache.similarity`
    /// is proven identical to the knowledge model's
    /// `trigram_similarity` (see `crate::similarity`), so routing the
    /// MCQ arm through it changes no answer bytes.
    fn respond(&self, query: &Query<'_>, cache: &SimilarityCache) -> Response {
        let text = match &query.question.body {
            QuestionBody::TrueFalse { candidate, .. } => {
                if self.matches(cache, &query.question.child, candidate) {
                    "Yes.".to_owned()
                } else {
                    "No.".to_owned()
                }
            }
            QuestionBody::Mcq { options, .. } => {
                let best = options
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        cache
                            .similarity(&query.question.child, a.1)
                            .total_cmp(&cache.similarity(&query.question.child, b.1))
                    })
                    .map(|(i, _)| i as u8)
                    .unwrap_or(0);
                format!("{})", (b'A' + best) as char)
            }
            QuestionBody::Sibling { options, .. } => {
                let best = options
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        cache
                            .similarity(&query.question.child, a.1)
                            .total_cmp(&cache.similarity(&query.question.child, b.1))
                    })
                    .map(|(i, _)| i as u8)
                    .unwrap_or(0);
                format!("{})", (b'A' + best) as char)
            }
        };
        Response::new(text)
    }
}

impl LanguageModel for LexicalBaseline {
    fn name(&self) -> &str {
        "lexical"
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        Ok(similarity::with_cache(|cache| self.respond(query, cache)))
    }

    /// Batched answering: one interner scope for the whole batch, so a
    /// level's vocabulary (children repeat across options, options
    /// repeat across questions) is lowercased and trigram-set once.
    fn answer_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Response, ModelError>> {
        similarity::with_cache(|cache| {
            queries.iter().map(|query| Ok(self.respond(query, cache))).collect()
        })
    }
}

/// Dimensionality of the hashed n-gram space.
const NGRAM_DIMS: usize = 512;

/// A character-n-gram vector-space model: names are embedded as hashed
/// 2–4-gram count vectors; Is-A is cosine similarity above a threshold.
#[derive(Debug, Clone, Copy)]
pub struct NgramVectorBaseline {
    /// Cosine similarity above which a TF relation is accepted.
    pub threshold: f64,
}

impl Default for NgramVectorBaseline {
    fn default() -> Self {
        NgramVectorBaseline { threshold: 0.35 }
    }
}

impl NgramVectorBaseline {
    /// Embed a name into hashed n-gram space (L2-normalized).
    pub fn embed(name: &str) -> [f32; NGRAM_DIMS] {
        let mut v = [0f32; NGRAM_DIMS];
        let lower: Vec<u8> = name.bytes().map(|b| b.to_ascii_lowercase()).collect();
        for n in 2..=4usize {
            if lower.len() < n {
                continue;
            }
            for gram in lower.windows(n) {
                let mut h = 0xcbf29ce484222325u64; // FNV-1a
                for &b in gram {
                    h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
                }
                v[(h % NGRAM_DIMS as u64) as usize] += 1.0;
            }
        }
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }

    /// Cosine similarity of two embedded names.
    pub fn cosine(a: &str, b: &str) -> f64 {
        let (va, vb) = (Self::embed(a), Self::embed(b));
        va.iter().zip(&vb).map(|(x, y)| f64::from(x * y)).sum()
    }
}

impl LanguageModel for NgramVectorBaseline {
    fn name(&self) -> &str {
        "ngram-vsm"
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        let text = match &query.question.body {
            QuestionBody::TrueFalse { candidate, .. } => {
                if Self::cosine(&query.question.child, candidate) >= self.threshold {
                    "Yes.".to_owned()
                } else {
                    "No.".to_owned()
                }
            }
            QuestionBody::Mcq { options, .. } => {
                let best = options
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        Self::cosine(&query.question.child, a.1)
                            .total_cmp(&Self::cosine(&query.question.child, b.1))
                    })
                    .map(|(i, _)| i as u8)
                    .unwrap_or(0);
                format!("{})", (b'A' + best) as char)
            }
            QuestionBody::Sibling { options, .. } => {
                let best = options
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        Self::cosine(&query.question.child, a.1)
                            .total_cmp(&Self::cosine(&query.question.child, b.1))
                    })
                    .map(|(i, _)| i as u8)
                    .unwrap_or(0);
                format!("{})", (b'A' + best) as char)
            }
        };
        Ok(Response::new(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
    use taxoglimpse_core::domain::TaxonomyKind;
    use taxoglimpse_core::eval::Evaluator;
    use taxoglimpse_synth::{generate, GenOptions};

    fn dataset(kind: TaxonomyKind, scale: f64, flavor: QuestionDataset) -> taxoglimpse_core::dataset::Dataset {
        let t = generate(kind, GenOptions { seed: 20, scale }).unwrap();
        DatasetBuilder::new(&t, kind, 20).sample_cap(Some(120)).build(flavor).unwrap()
    }

    #[test]
    fn random_baseline_is_near_half_on_tf() {
        let d = dataset(TaxonomyKind::Ebay, 1.0, QuestionDataset::Hard);
        let report = Evaluator::default().run(&RandomBaseline::new(1), &d);
        assert!((report.overall.accuracy() - 0.5).abs() < 0.08, "{}", report.overall.accuracy());
        assert_eq!(report.overall.miss_rate(), 0.0);
    }

    #[test]
    fn random_baseline_is_near_quarter_on_mcq() {
        let d = dataset(TaxonomyKind::Google, 0.5, QuestionDataset::Mcq);
        let report = Evaluator::default().run(&RandomBaseline::new(2), &d);
        assert!((report.overall.accuracy() - 0.25).abs() < 0.08, "{}", report.overall.accuracy());
    }

    #[test]
    fn majority_yes_scores_positive_rate() {
        let d = dataset(TaxonomyKind::Ebay, 1.0, QuestionDataset::Easy);
        let report = Evaluator::default().run(&MajorityYesBaseline, &d);
        assert!((report.overall.accuracy() - 0.5).abs() < 0.05);
    }

    #[test]
    fn lexical_baseline_excels_on_overlapping_names() {
        let oae = dataset(TaxonomyKind::Oae, 0.3, QuestionDataset::Easy);
        let glotto = dataset(TaxonomyKind::Glottolog, 0.2, QuestionDataset::Easy);
        let lex = LexicalBaseline::default();
        let on_oae = Evaluator::default().run(&lex, &oae).overall.accuracy();
        let on_glotto = Evaluator::default().run(&lex, &glotto).overall.accuracy();
        assert!(on_oae > 0.8, "OAE children embed parents: {on_oae}");
        assert!(on_oae > on_glotto + 0.2, "oae {on_oae} vs glottolog {on_glotto}");
    }

    #[test]
    fn ngram_embedding_properties() {
        let v = NgramVectorBaseline::embed("Verbascum");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        assert!((NgramVectorBaseline::cosine("abc", "abc") - 1.0).abs() < 1e-6);
        assert!(NgramVectorBaseline::cosine("Verbascum chaixii", "Verbascum") > 0.5);
        assert!(NgramVectorBaseline::cosine("Verbascum chaixii", "Panthera") < 0.2);
        // Empty / tiny strings embed to zero vectors (cosine 0).
        assert_eq!(NgramVectorBaseline::cosine("a", "a"), 0.0);
    }

    #[test]
    fn vsm_beats_random_on_species_level() {
        // The VSM exploits the genus⊂species surface form; random cannot.
        let t = generate(TaxonomyKind::Ncbi, GenOptions { seed: 21, scale: 0.003 }).unwrap();
        let slice = DatasetBuilder::new(&t, TaxonomyKind::Ncbi, 21)
            .sample_cap(Some(150))
            .build_level(QuestionDataset::Hard, t.num_levels() - 1);
        let evaluator = Evaluator::default();
        let mut vsm_metrics = taxoglimpse_core::metrics::Metrics::default();
        let mut rnd_metrics = taxoglimpse_core::metrics::Metrics::default();
        let vsm = NgramVectorBaseline::default();
        let rnd = RandomBaseline::new(3);
        for q in &slice.questions {
            vsm_metrics.record(evaluator.ask(&vsm, q, &[]));
            rnd_metrics.record(evaluator.ask(&rnd, q, &[]));
        }
        assert!(
            vsm_metrics.accuracy() > rnd_metrics.accuracy() + 0.2,
            "vsm {} vs random {}",
            vsm_metrics.accuracy(),
            rnd_metrics.accuracy()
        );
    }

    #[test]
    fn baselines_handle_mcq() {
        let d = dataset(TaxonomyKind::Ncbi, 0.003, QuestionDataset::Mcq);
        for model in [&LexicalBaseline::default() as &dyn LanguageModel, &NgramVectorBaseline::default()] {
            let report = Evaluator::default().run(model, &d);
            assert!(report.overall.accuracy() > 0.25, "{} should beat chance", model.name());
        }
    }
}
