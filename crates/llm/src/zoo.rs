//! The model zoo: the paper's eighteen models, ready to evaluate.

use crate::profile::ModelId;
use crate::simulate::SimulatedLlm;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A registry of simulated models.
#[derive(Clone)]
pub struct ModelZoo {
    models: BTreeMap<ModelId, Arc<SimulatedLlm>>,
}

impl ModelZoo {
    /// The full eighteen-model zoo with the default simulation seed.
    pub fn default_zoo() -> Self {
        Self::with_seed(0x11AA)
    }

    /// The full zoo with an explicit simulation seed.
    pub fn with_seed(seed: u64) -> Self {
        let models = ModelId::ALL
            .into_iter()
            .map(|id| (id, Arc::new(SimulatedLlm::with_seed(id, seed))))
            .collect();
        ModelZoo { models }
    }

    /// Fetch one model.
    pub fn get(&self, id: ModelId) -> Option<Arc<SimulatedLlm>> {
        self.models.get(&id).cloned()
    }

    /// All models in table row order.
    pub fn all(&self) -> Vec<Arc<SimulatedLlm>> {
        ModelId::ALL
            .into_iter()
            .filter_map(|id| self.get(id))
            .collect()
    }

    /// The representative subset the paper uses for the Figure-4 radar
    /// charts: GPT-4, Flan-T5-11B, Llama-2-7B.
    pub fn figure4_representatives(&self) -> Vec<Arc<SimulatedLlm>> {
        [ModelId::Gpt4, ModelId::FlanT5_11b, ModelId::Llama2_7b]
            .into_iter()
            .filter_map(|id| self.get(id))
            .collect()
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the zoo is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Look up a model by its display name (case-insensitive).
    pub fn by_name(&self, name: &str) -> Option<Arc<SimulatedLlm>> {
        name.parse::<ModelId>().ok().and_then(|id| self.get(id))
    }
}

impl std::fmt::Debug for ModelZoo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelZoo").field("models", &self.models.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_core::model::LanguageModel;

    #[test]
    fn zoo_has_all_eighteen() {
        let zoo = ModelZoo::default_zoo();
        assert_eq!(zoo.len(), 18);
        assert!(!zoo.is_empty());
        assert_eq!(zoo.all().len(), 18);
        for id in ModelId::ALL {
            let m = zoo.get(id).unwrap();
            assert_eq!(m.name(), id.display_name());
        }
    }

    #[test]
    fn figure4_representatives_are_the_papers() {
        let zoo = ModelZoo::default_zoo();
        let reps = zoo.figure4_representatives();
        let names: Vec<&str> = reps.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["GPT-4", "Flan-T5-11B", "Llama-2-7B"]);
    }

    #[test]
    fn by_name_lookup() {
        let zoo = ModelZoo::default_zoo();
        assert_eq!(zoo.by_name("gpt-4").unwrap().id(), ModelId::Gpt4);
        assert_eq!(zoo.by_name("MISTRAL").unwrap().id(), ModelId::Mistral7b);
        assert!(zoo.by_name("gpt-5").is_none());
    }
}
