//! The model zoo: the paper's eighteen models, ready to evaluate.

use crate::profile::ModelId;
use crate::simulate::SimulatedLlm;
use std::collections::BTreeMap;
use std::sync::Arc;
use taxoglimpse_synth::rng::hash_str;

/// Seed for the content-keyed zoo partition ([`ModelZoo::partition`]).
const ZOO_PARTITION_SEED: u64 = 0x5AAD_2000_0000_0003;

/// A registry of simulated models.
#[derive(Clone)]
pub struct ModelZoo {
    models: BTreeMap<ModelId, Arc<SimulatedLlm>>,
}

impl ModelZoo {
    /// The full eighteen-model zoo with the default simulation seed.
    pub fn default_zoo() -> Self {
        Self::with_seed(0x11AA)
    }

    /// The full zoo with an explicit simulation seed.
    pub fn with_seed(seed: u64) -> Self {
        let models = ModelId::ALL
            .into_iter()
            .map(|id| (id, Arc::new(SimulatedLlm::with_seed(id, seed))))
            .collect();
        ModelZoo { models }
    }

    /// Fetch one model.
    pub fn get(&self, id: ModelId) -> Option<Arc<SimulatedLlm>> {
        self.models.get(&id).cloned()
    }

    /// All models in table row order.
    pub fn all(&self) -> Vec<Arc<SimulatedLlm>> {
        ModelId::ALL
            .into_iter()
            .filter_map(|id| self.get(id))
            .collect()
    }

    /// The representative subset the paper uses for the Figure-4 radar
    /// charts: GPT-4, Flan-T5-11B, Llama-2-7B.
    pub fn figure4_representatives(&self) -> Vec<Arc<SimulatedLlm>> {
        [ModelId::Gpt4, ModelId::FlanT5_11b, ModelId::Llama2_7b]
            .into_iter()
            .filter_map(|id| self.get(id))
            .collect()
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the zoo is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Look up a model by its display name (case-insensitive).
    pub fn by_name(&self, name: &str) -> Option<Arc<SimulatedLlm>> {
        name.parse::<ModelId>().ok().and_then(|id| self.get(id))
    }

    /// Partition the zoo into `num_shards` (clamped to ≥ 1) disjoint
    /// model groups for sharded runs where each shard serves a subset
    /// of models rather than a subset of taxonomies.
    ///
    /// A model's group is keyed by its *display name* content — never
    /// by registry iteration order, insertion history, or the shard
    /// count enumeration — so the same model lands in slot
    /// `hash(name) mod num_shards` on every machine and every run.
    /// Groups keep table row order internally, and every model appears
    /// in exactly one group.
    pub fn partition(&self, num_shards: usize) -> Vec<Vec<Arc<SimulatedLlm>>> {
        let num_shards = num_shards.max(1);
        let mut groups: Vec<Vec<Arc<SimulatedLlm>>> = vec![Vec::new(); num_shards];
        for model in self.all() {
            let shard =
                (hash_str(ZOO_PARTITION_SEED, model.id().display_name()) % num_shards as u64) as usize;
            groups[shard].push(model);
        }
        groups
    }
}

impl std::fmt::Debug for ModelZoo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelZoo").field("models", &self.models.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_core::model::LanguageModel;

    #[test]
    fn zoo_has_all_eighteen() {
        let zoo = ModelZoo::default_zoo();
        assert_eq!(zoo.len(), 18);
        assert!(!zoo.is_empty());
        assert_eq!(zoo.all().len(), 18);
        for id in ModelId::ALL {
            let m = zoo.get(id).unwrap();
            assert_eq!(m.name(), id.display_name());
        }
    }

    #[test]
    fn figure4_representatives_are_the_papers() {
        let zoo = ModelZoo::default_zoo();
        let reps = zoo.figure4_representatives();
        let names: Vec<&str> = reps.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["GPT-4", "Flan-T5-11B", "Llama-2-7B"]);
    }

    #[test]
    fn by_name_lookup() {
        let zoo = ModelZoo::default_zoo();
        assert_eq!(zoo.by_name("gpt-4").unwrap().id(), ModelId::Gpt4);
        assert_eq!(zoo.by_name("MISTRAL").unwrap().id(), ModelId::Mistral7b);
        assert!(zoo.by_name("gpt-5").is_none());
    }

    /// Partitioning covers all eighteen models disjointly at every
    /// shard count, and a model's group is a pure function of its name
    /// (independent of which shard count we enumerate first).
    #[test]
    fn partition_is_disjoint_exhaustive_and_content_keyed() {
        let zoo = ModelZoo::default_zoo();
        for shards in [1usize, 2, 3, 8] {
            let groups = zoo.partition(shards);
            assert_eq!(groups.len(), shards);
            let mut names: Vec<String> =
                groups.iter().flatten().map(|m| m.name().to_owned()).collect();
            assert_eq!(names.len(), zoo.len(), "{shards} shards must cover the whole zoo");
            names.sort();
            names.dedup();
            assert_eq!(names.len(), zoo.len(), "no model may appear in two groups");
        }
        // Re-partitioning (fresh zoo instance, any call order) lands
        // every model in the same group: content, not history.
        let a = zoo.partition(3);
        let b = ModelZoo::default_zoo().partition(3);
        for (ga, gb) in a.iter().zip(&b) {
            let na: Vec<&str> = ga.iter().map(|m| m.name()).collect();
            let nb: Vec<&str> = gb.iter().map(|m| m.name()).collect();
            assert_eq!(na, nb);
        }
        // Clamping: zero shards behaves as one.
        assert_eq!(zoo.partition(0).len(), 1);
    }
}
