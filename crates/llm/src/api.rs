//! Simulated API serving layer: latency, retries and dollar-cost
//! accounting.
//!
//! The paper accessed GPTs "through Azure OpenAI API and the OpenAI
//! official API" and deployed open models on 8×RTX-3090 + 4×A100. This
//! module wraps any [`LanguageModel`] in an [`ApiClient`] that models
//! that serving reality deterministically:
//!
//! * **latency** — per-request seconds from the scalability model
//!   (open-weight) or a flat API round-trip (closed), accumulated on a
//!   simulated clock;
//! * **transient failures** — a configurable failure rate with
//!   exponential-backoff retries, injected deterministically per
//!   request;
//! * **cost** — token-metered pricing for API models, so the question
//!   "what would running all of TaxoGlimpse on GPT-4 cost?" has a
//!   number.

use crate::profile::ModelId;
use crate::scalability;
use crate::simulate::SimulatedLlm;
use crate::tokenizer::Tokenizer;
use std::sync::Mutex;
use taxoglimpse_core::model::{LanguageModel, ModelError, Query, Response};
use taxoglimpse_synth::rng::{hash_str, mix64};

/// Pricing per million tokens (input, output) in USD. Closed-model
/// prices reflect the era of the paper's experiments (2024); open
/// models are priced at 0 (self-hosted — the cost shows up as GPU time
/// instead).
pub fn price_per_mtok(model: ModelId) -> (f64, f64) {
    match model {
        ModelId::Gpt4 => (30.0, 60.0),
        ModelId::Gpt35 => (0.5, 1.5),
        ModelId::Claude3 => (15.0, 75.0),
        _ => (0.0, 0.0),
    }
}

/// Serving statistics accumulated by an [`ApiClient`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServingStats {
    /// Requests issued by callers.
    pub requests: u64,
    /// Attempts including retries.
    pub attempts: u64,
    /// Transient failures encountered (each retried).
    pub transient_failures: u64,
    /// Requests that exhausted their retries.
    pub exhausted: u64,
    /// Prompt tokens billed.
    pub prompt_tokens: u64,
    /// Completion tokens billed.
    pub completion_tokens: u64,
    /// Simulated wall-clock seconds spent (latency + backoff).
    pub simulated_seconds: f64,
    /// Dollars spent (API-priced models only).
    pub cost_usd: f64,
}

/// Retry/latency configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApiConfig {
    /// Probability a single attempt fails transiently.
    pub failure_rate: f64,
    /// Maximum attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff in seconds; attempt `k` waits `base * 2^(k-1)`.
    pub backoff_base_s: f64,
    /// Flat round-trip latency for API-only (closed) models, seconds.
    pub api_round_trip_s: f64,
}

impl Default for ApiConfig {
    fn default() -> Self {
        ApiConfig { failure_rate: 0.02, max_attempts: 4, backoff_base_s: 0.5, api_round_trip_s: 0.8 }
    }
}

/// A [`LanguageModel`] wrapped in the serving simulation.
pub struct ApiClient {
    inner: SimulatedLlm,
    config: ApiConfig,
    tokenizer: Tokenizer,
    stats: Mutex<ServingStats>,
    seed: u64,
}

impl ApiClient {
    /// Wrap `model` with the default serving configuration.
    pub fn new(model: SimulatedLlm) -> Self {
        Self::with_config(model, ApiConfig::default())
    }

    /// Wrap with an explicit configuration.
    pub fn with_config(model: SimulatedLlm, config: ApiConfig) -> Self {
        let seed = mix64(0x0AB1_C0DE ^ model.id().row() as u64);
        ApiClient { inner: model, config, tokenizer: Tokenizer::default(), stats: Mutex::new(ServingStats::default()), seed }
    }

    /// Which model is being served.
    pub fn model(&self) -> ModelId {
        self.inner.id()
    }

    /// Serving statistics so far.
    pub fn stats(&self) -> ServingStats {
        *self.stats.lock().expect("stats lock not poisoned")
    }

    /// Seconds one successful attempt takes for this model.
    fn attempt_latency(&self) -> f64 {
        match scalability::footprint(self.inner.id()) {
            Some(f) => f.seconds_per_question,
            None => self.config.api_round_trip_s,
        }
    }

    /// Deterministic per-attempt failure draw. The caller's retry
    /// ordinal (`query.attempt`) is mixed in so an evaluator-level
    /// redelivery re-rolls the failure stream instead of replaying it;
    /// at `query.attempt == 0` the draw is identical to the historical
    /// one, keeping pre-resilience runs byte-stable.
    fn attempt_fails(&self, query: &Query<'_>, attempt: u32) -> bool {
        let salt = self.seed ^ u64::from(attempt) ^ (u64::from(query.attempt) << 16);
        let h = mix64(hash_str(salt, query.prompt));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.config.failure_rate
    }

    /// Estimated dollars to answer `n` questions of `avg_prompt_tokens`
    /// prompt / `avg_completion_tokens` completion each.
    pub fn estimate_cost(&self, n: u64, avg_prompt_tokens: f64, avg_completion_tokens: f64) -> f64 {
        let (pin, pout) = price_per_mtok(self.inner.id());
        (n as f64) * (avg_prompt_tokens * pin + avg_completion_tokens * pout) / 1e6
    }
}

impl ApiClient {
    /// The serving loop for one request: retry transient failures with
    /// backoff, meter latency and tokens. `inner_answer` produces the
    /// wrapped model's answer — either a live call (sequential path) or
    /// a delivery prefetched through the batch path; both are the same
    /// bytes because inner answers are pure per-query and independent
    /// of the serving attempt ordinal.
    fn serve(
        &self,
        stats: &mut ServingStats,
        query: &Query<'_>,
        inner_answer: impl FnOnce() -> Result<Response, ModelError>,
    ) -> Result<Response, ModelError> {
        stats.requests += 1;
        let mut answered = None;
        let mut request_seconds = 0.0;
        let mut attempts_made = 0u32;
        for attempt in 1..=self.config.max_attempts {
            stats.attempts += 1;
            attempts_made = attempt;
            request_seconds += self.attempt_latency();
            if self.attempt_fails(query, attempt) {
                stats.transient_failures += 1;
                request_seconds +=
                    self.config.backoff_base_s * f64::from(1u32 << (attempt - 1).min(8));
                continue;
            }
            answered = Some(inner_answer()?);
            break;
        }
        stats.simulated_seconds += request_seconds;
        let prompt_tokens = self.tokenizer.count(query.prompt) as u64;
        stats.prompt_tokens += prompt_tokens;
        let (pin, pout) = price_per_mtok(self.inner.id());
        let mut response = match answered {
            Some(r) => r,
            None => {
                stats.exhausted += 1;
                // Internal retries are spent: surface a structured
                // outage and let the caller's resilience layer (or the
                // evaluator's Failed accounting) take it from here.
                stats.cost_usd += prompt_tokens as f64 * pin / 1e6;
                return Err(ModelError::Unavailable);
            }
        };
        let completion_tokens = self.tokenizer.count(&response.text) as u64;
        stats.completion_tokens += completion_tokens;
        stats.cost_usd += (prompt_tokens as f64 * pin + completion_tokens as f64 * pout) / 1e6;
        response.latency_s = request_seconds;
        response.attempts = attempts_made;
        Ok(response)
    }
}

impl LanguageModel for ApiClient {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        // lint:allow(L002, stats accounting and the serve closure are deterministic simulation - no real network wait happens under the lock)
        let mut stats = self.stats.lock().expect("stats lock not poisoned");
        self.serve(&mut stats, query, || self.inner.answer(query))
    }

    /// Batched answering: prefetch the wrapped model's answers as one
    /// batch (so its own amortizations apply), then replay the serving
    /// simulation per request under a single stats lock. Responses and
    /// `ServingStats` are byte-identical to the sequential path, with
    /// one documented exception: a request that exhausts its retries
    /// discards its prefetched answer, so the *inner* model's usage
    /// counters may exceed the sequential path's (probability
    /// `failure_rate^max_attempts` per request, ~1.6e-7 at defaults).
    /// Reports never read those counters.
    fn answer_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Response, ModelError>> {
        let inner_answers = self.inner.answer_batch(queries);
        assert_eq!(
            inner_answers.len(),
            queries.len(),
            "answer_batch must return exactly one result per query"
        );
        let mut stats = self.stats.lock().expect("stats lock not poisoned");
        inner_answers
            .into_iter()
            .zip(queries)
            .map(|(inner_answer, query)| self.serve(&mut stats, query, move || inner_answer))
            .collect()
    }

    fn reset(&self) {
        self.inner.reset();
        *self.stats.lock().expect("stats lock not poisoned") = ServingStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
    use taxoglimpse_core::domain::TaxonomyKind;
    use taxoglimpse_core::eval::Evaluator;
    use taxoglimpse_synth::{generate, GenOptions};

    fn dataset() -> taxoglimpse_core::dataset::Dataset {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 40, scale: 1.0 }).unwrap();
        DatasetBuilder::new(&t, TaxonomyKind::Ebay, 40)
            .sample_cap(Some(50))
            .build(QuestionDataset::Hard)
            .unwrap()
    }

    #[test]
    fn accounting_adds_up() {
        let d = dataset();
        let client = ApiClient::new(SimulatedLlm::new(ModelId::Gpt4));
        let report = Evaluator::default().run(&client, &d);
        let stats = client.stats();
        assert_eq!(stats.requests as usize, d.len());
        assert!(stats.attempts >= stats.requests);
        assert!(stats.prompt_tokens > 0);
        assert!(stats.cost_usd > 0.0, "GPT-4 is not free");
        assert!(stats.simulated_seconds > 0.0);
        assert_eq!(report.overall.total(), d.len());
    }

    #[test]
    fn open_models_cost_nothing_but_take_gpu_time() {
        let d = dataset();
        let client = ApiClient::new(SimulatedLlm::new(ModelId::Llama2_70b));
        Evaluator::default().run(&client, &d);
        let stats = client.stats();
        assert_eq!(stats.cost_usd, 0.0);
        // 70B at ~0.8 s/question over 100 questions.
        assert!(stats.simulated_seconds > 50.0);
    }

    #[test]
    fn retries_recover_transient_failures() {
        let d = dataset();
        let flaky = ApiClient::with_config(
            SimulatedLlm::new(ModelId::Gpt35),
            ApiConfig { failure_rate: 0.3, max_attempts: 6, ..Default::default() },
        );
        let report = Evaluator::default().run(&flaky, &d);
        let stats = flaky.stats();
        assert!(stats.transient_failures > 0, "30% failure rate must fire");
        assert_eq!(stats.exhausted, 0, "6 attempts at 30% practically never exhaust");
        // Quality is unaffected by retried failures.
        assert!(report.overall.accuracy() > 0.7);
    }

    #[test]
    fn zero_retries_lose_requests() {
        let d = dataset();
        let fragile = ApiClient::with_config(
            SimulatedLlm::new(ModelId::Gpt4),
            ApiConfig { failure_rate: 0.5, max_attempts: 1, ..Default::default() },
        );
        let with_failures = Evaluator::default().run(&fragile, &d);
        assert!(fragile.stats().exhausted > 0);
        let reliable = Evaluator::default().run(&SimulatedLlm::new(ModelId::Gpt4), &d);
        assert!(with_failures.overall.accuracy() < reliable.overall.accuracy());
    }

    #[test]
    fn reset_clears_stats() {
        let d = dataset();
        let client = ApiClient::new(SimulatedLlm::new(ModelId::Gpt35));
        Evaluator::default().run(&client, &d);
        assert!(client.stats().requests > 0);
        client.reset();
        assert_eq!(client.stats(), ServingStats::default());
    }

    #[test]
    fn cost_estimation_matches_prices() {
        let client = ApiClient::new(SimulatedLlm::new(ModelId::Gpt4));
        // 1000 questions × (30 in + 5 out) tokens at $30/$60 per Mtok.
        let est = client.estimate_cost(1000, 30.0, 5.0);
        let expected = 1000.0 * (30.0 * 30.0 + 5.0 * 60.0) / 1e6;
        assert!((est - expected).abs() < 1e-9);
        // Free for self-hosted.
        let open = ApiClient::new(SimulatedLlm::new(ModelId::FlanT5_3b));
        assert_eq!(open.estimate_cost(1000, 30.0, 5.0), 0.0);
    }

    #[test]
    fn batch_serving_matches_sequential_responses_and_stats() {
        use taxoglimpse_core::prompts::{render_prefix, render_prompt_into, PromptSetting};
        let d = dataset();
        let config = ApiConfig { failure_rate: 0.25, ..Default::default() };
        let batched = ApiClient::with_config(SimulatedLlm::new(ModelId::Gpt35), config);
        let sequential = ApiClient::with_config(SimulatedLlm::new(ModelId::Gpt35), config);
        for setting in [PromptSetting::ZeroShot, PromptSetting::FewShot] {
            for slice in &d.levels {
                let prefix = render_prefix(
                    setting,
                    Default::default(),
                    &slice.exemplars,
                    PromptSetting::SHOTS,
                );
                let prompts: Vec<String> = slice
                    .questions
                    .iter()
                    .map(|q| {
                        let mut s = String::new();
                        render_prompt_into(q, setting, Default::default(), &prefix, &mut s);
                        s
                    })
                    .collect();
                let queries: Vec<Query<'_>> = prompts
                    .iter()
                    .zip(&slice.questions)
                    .map(|(p, q)| Query::new(p, q, setting).with_prefix_len(prefix.len()))
                    .collect();
                let batch = batched.answer_batch(&queries);
                let singles: Vec<_> = queries.iter().map(|q| sequential.answer(q)).collect();
                assert_eq!(batch, singles, "{setting:?}: batched serving diverged");
            }
        }
        assert_eq!(batched.stats(), sequential.stats(), "serving accounting diverged");
    }

    #[test]
    fn deterministic_failure_injection() {
        let d = dataset();
        let mk = || {
            let c = ApiClient::with_config(
                SimulatedLlm::new(ModelId::Gpt35),
                ApiConfig { failure_rate: 0.2, ..Default::default() },
            );
            Evaluator::default().run(&c, &d);
            c.stats().transient_failures
        };
        assert_eq!(mk(), mk());
    }
}
