//! # taxoglimpse-llm
//!
//! The simulated-LLM substrate standing in for the paper's eighteen
//! closed- and open-weight models (GPTs, Claude-3, Llama-2/3, Flan-T5,
//! Falcon, Vicuna, Mistral/Mixtral, LLMs4OL), which cannot be queried in
//! this offline environment.
//!
//! Each model is a [`profile::ModelProfile`] whose *knowledge model*
//! ([`knowledge`]) anchors on the aggregate accuracy/miss rates the
//! paper published (Tables 5–7, embedded in [`calib`]) and modulates
//! them mechanistically per question:
//!
//! * **depth** — conditional accuracy declines from root to leaf
//!   (Finding 2),
//! * **surface similarity** — character-trigram overlap between the
//!   child and candidate names shifts the answer logit, which produces
//!   the NCBI species→genus uplift and the OAE behaviour without any
//!   per-level hardcoding,
//! * **prompting setting** — few-shot suppresses abstention, CoT
//!   inflates it for abstention-prone models (Finding 4),
//! * **question type** — TF vs MCQ anchors differ per the tables.
//!
//! Answers are emitted as free natural-language text ([`respond`]) in
//! model-family-specific phrasing, and are deterministic: the same
//! (model, question, setting) always yields the same response.
//!
//! [`scalability`] models Figure 7 (GPU RAM and per-question latency);
//! [`finetune`] provides the domain-specific instruction-tuning wrapper
//! that LLMs4OL applies to Flan-T5-3B (Finding 3).

#![warn(missing_docs)]

pub mod api;
pub mod baselines;
pub mod calib;
pub mod faults;
pub mod finetune;
pub mod knowledge;
pub mod profile;
pub mod respond;
pub mod scalability;
pub mod similarity;
pub mod simulate;
pub mod tokenizer;
pub mod zoo;

pub use faults::{FaultInjector, FaultPlan, FaultStats};
pub use profile::{ModelFamily, ModelId, ModelProfile};
pub use simulate::SimulatedLlm;
pub use zoo::ModelZoo;
