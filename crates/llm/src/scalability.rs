//! The scalability model — the paper's Figure 7 (§5.4): GPU RAM and
//! average per-question inference time for the six open-source series.
//!
//! The paper's qualitative result: Flan-T5s, Vicunas and Llama-3s scale
//! well (inference time grows slowly with model size), while Falcon-40B
//! and the Llama-2 jump to 70B are comparatively expensive. We model:
//!
//! * **GPU RAM** ≈ 2 bytes/parameter (fp16 weights) + KV-cache/activation
//!   overhead per family;
//! * **latency** ≈ family base + per-token cost × tokens, with the
//!   per-parameter coefficient reflecting each family's serving
//!   efficiency (encoder-decoder Flan-T5 answers one token; MoE Mixtral
//!   activates ~13B of its 46.7B parameters).

use crate::profile::{ModelFamily, ModelId};

/// Predicted serving footprint for one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Footprint {
    /// Which model.
    pub model: ModelId,
    /// GPU memory needed to host the model, in GiB.
    pub gpu_ram_gib: f64,
    /// Average seconds per zero-shot taxonomy question.
    pub seconds_per_question: f64,
}

/// Parameters actually exercised per token (MoE models activate a
/// subset).
fn active_params_b(model: ModelId) -> Option<f64> {
    match model {
        ModelId::Mixtral8x7b => Some(12.9),
        other => other.params_billion(),
    }
}

/// Family serving-efficiency coefficient: seconds per question per
/// billion active parameters. Calibrated to the paper's Figure 7
/// qualitative ordering (Flan-T5s/Vicunas/Llama-3s scale well; Falcons
/// poorly).
fn family_latency_coeff(family: ModelFamily) -> f64 {
    match family {
        ModelFamily::FlanT5 | ModelFamily::Llms4Ol => 0.004, // single-token decode
        ModelFamily::Llama3 => 0.006,
        ModelFamily::Vicuna => 0.007,
        ModelFamily::Llama2 => 0.011,
        ModelFamily::Mistral => 0.009,
        ModelFamily::Falcon => 0.022, // the paper's slow outlier
        // Closed models: API latency dominates; coefficient unused.
        ModelFamily::Gpt | ModelFamily::Claude => 0.0,
    }
}

/// Predict the footprint of an open-source model; `None` for API-only
/// models (the paper's Figure 7 covers only the open series).
pub fn footprint(model: ModelId) -> Option<Footprint> {
    let params = model.params_billion()?;
    let active = active_params_b(model)?;
    // fp16 weights + ~15% KV cache and activations.
    let gpu_ram_gib = params * 2.0 * 1.15;
    let base = 0.05; // fixed per-question overhead (tokenize, schedule)
    let seconds_per_question = base + family_latency_coeff(model.family()) * active;
    Some(Footprint { model, gpu_ram_gib, seconds_per_question })
}

/// The Figure-7 series: per family, `(model, RAM GiB, s/question)` in
/// ascending size order.
pub fn figure7_series() -> Vec<(ModelFamily, Vec<Footprint>)> {
    let families = [
        ModelFamily::Llama2,
        ModelFamily::Llama3,
        ModelFamily::Vicuna,
        ModelFamily::FlanT5,
        ModelFamily::Falcon,
        ModelFamily::Mistral,
    ];
    families
        .into_iter()
        .map(|family| {
            let mut models: Vec<Footprint> = ModelId::ALL
                .into_iter()
                .filter(|m| m.family() == family)
                .filter_map(footprint)
                .collect();
            models.sort_by(|a, b| a.gpu_ram_gib.total_cmp(&b.gpu_ram_gib));
            (family, models)
        })
        .collect()
}

/// Latency growth slope within a family: additional seconds per question
/// per additional billion parameters, between the family's smallest and
/// largest members. Families the paper calls scalable (Flan-T5s,
/// Vicunas, Llama-3s) have small slopes; Falcon's is the steepest.
pub fn family_latency_slope(family: ModelFamily) -> Option<f64> {
    let mut series: Vec<(f64, f64)> = ModelId::ALL
        .into_iter()
        .filter(|m| m.family() == family)
        .filter_map(|m| {
            let f = footprint(m)?;
            Some((m.params_billion()?, f.seconds_per_question))
        })
        .collect();
    if series.len() < 2 {
        return None;
    }
    series.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let (p0, l0) = series[0];
    let (p1, l1) = series[series.len() - 1];
    Some((l1 - l0) / (p1 - p0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_models_have_no_footprint() {
        assert!(footprint(ModelId::Gpt4).is_none());
        assert!(footprint(ModelId::Claude3).is_none());
        assert!(footprint(ModelId::Llama2_70b).is_some());
    }

    #[test]
    fn ram_scales_with_parameters() {
        let small = footprint(ModelId::Llama2_7b).unwrap();
        let big = footprint(ModelId::Llama2_70b).unwrap();
        assert!(big.gpu_ram_gib / small.gpu_ram_gib > 9.0);
        // 70B fp16 ≈ 140 GiB + overhead: needs multiple A100s, as the
        // paper's deployment (4×A100) implies.
        assert!(big.gpu_ram_gib > 140.0 && big.gpu_ram_gib < 200.0);
    }

    /// Figure 7's qualitative claim: Flan-T5s, Vicunas and Llama-3s show
    /// good scalability — their latency grows less steeply with model
    /// size than Falcon's (and Llama-2's).
    #[test]
    fn scalable_families_beat_falcon() {
        let falcon = family_latency_slope(ModelFamily::Falcon).unwrap();
        let llama2 = family_latency_slope(ModelFamily::Llama2).unwrap();
        for family in [ModelFamily::FlanT5, ModelFamily::Vicuna, ModelFamily::Llama3] {
            let slope = family_latency_slope(family).unwrap();
            assert!(slope < falcon, "{family:?} slope {slope} vs Falcon {falcon}");
            assert!(slope < llama2, "{family:?} slope {slope} vs Llama-2 {llama2}");
        }
    }

    #[test]
    fn mixtral_moe_is_cheaper_than_dense_equivalent() {
        let mixtral = footprint(ModelId::Mixtral8x7b).unwrap();
        let llama70 = footprint(ModelId::Llama2_70b).unwrap();
        // Mixtral hosts ~47B params but serves like a ~13B model.
        assert!(mixtral.seconds_per_question < llama70.seconds_per_question);
    }

    #[test]
    fn figure7_covers_the_six_open_series() {
        let series = figure7_series();
        assert_eq!(series.len(), 6);
        for (family, models) in &series {
            assert!(!models.is_empty(), "{family:?}");
            // Sorted ascending by RAM.
            for w in models.windows(2) {
                assert!(w[0].gpu_ram_gib <= w[1].gpu_ram_gib);
            }
        }
    }
}
