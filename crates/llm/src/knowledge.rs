//! The knowledge model: converts calibration anchors plus per-question
//! evidence into (miss probability, conditional correctness).
//!
//! ## Anchor disaggregation
//!
//! The paper reports dataset-level aggregates: `A_easy`/`M_easy` over
//! {positives + easy negatives} and `A_hard`/`M_hard` over {positives +
//! hard negatives}. We disaggregate with the identification choice that
//! positives (and easy negatives) behave like the easy aggregate; the
//! hard-negative anchor is then pinned by `A_nh = 2·A_hard − A_easy` so
//! that **both** dataset aggregates are reproduced in expectation.
//!
//! ## Per-question modulation (in logit space)
//!
//! * **depth** — conditional correctness declines linearly in the child
//!   level, centered mid-taxonomy so the taxonomy-wide mean stays at the
//!   anchor (Finding 2's root-to-leaf decline);
//! * **surface evidence** — character-trigram overlap between names. For
//!   a positive, high child↔candidate similarity helps; for a negative,
//!   what helps is the *contrast* between the child's similarity to its
//!   true parent and to the candidate. This single mechanism produces
//!   the paper's NCBI species→genus uplift (species names embed the
//!   genus) and keeps OAE hard negatives hard (uncles share the parent's
//!   phrase). Evidence is centered per name regime so aggregates stay
//!   anchored.

use crate::calib;
use crate::profile::{ModelId, ModelProfile};
use crate::similarity::{self, SimilarityCache};
use taxoglimpse_core::dataset::QuestionDataset;
use taxoglimpse_core::prompts::PromptSetting;
use taxoglimpse_core::question::{NegativeKind, Question, QuestionBody};
use taxoglimpse_synth::profiles::{NameRegime, TaxonomyProfile};

/// Character-trigram Jaccard similarity, case-insensitive.
///
/// Strings shorter than three characters fall back to exact-match 1/0.
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    let ta = trigrams(a);
    let tb = trigrams(b);
    if ta.is_empty() || tb.is_empty() {
        return if a.eq_ignore_ascii_case(b) { 1.0 } else { 0.0 };
    }
    let mut intersection = 0usize;
    let mut i = 0;
    let mut j = 0;
    while i < ta.len() && j < tb.len() {
        match ta[i].cmp(&tb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                intersection += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = ta.len() + tb.len() - intersection;
    intersection as f64 / union as f64
}

fn trigrams(s: &str) -> Vec<[u8; 3]> {
    let lower: Vec<u8> = s.bytes().map(|b| b.to_ascii_lowercase()).collect();
    if lower.len() < 3 {
        return Vec::new();
    }
    let mut grams: Vec<[u8; 3]> = lower.windows(3).map(|w| [w[0], w[1], w[2]]).collect();
    grams.sort_unstable();
    grams.dedup();
    grams
}

/// The decision probabilities for one question.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Probability of answering "I don't know".
    pub miss_prob: f64,
    /// Probability of a correct answer, conditional on answering.
    pub correct_prob: f64,
}

/// Per-model knowledge engine.
#[derive(Debug, Clone, Copy)]
pub struct KnowledgeModel {
    profile: ModelProfile,
    /// Whether surface-form (trigram + containment) evidence is applied.
    /// Disabling it is the ablation that removes the NCBI/OAE leaf-level
    /// uplifts (DESIGN.md §4).
    use_surface_evidence: bool,
}

impl KnowledgeModel {
    /// Build the engine for one model.
    pub fn new(id: ModelId) -> Self {
        KnowledgeModel { profile: ModelProfile::of(id), use_surface_evidence: true }
    }

    /// Ablation: drop all surface-form evidence (names become opaque
    /// tokens to the model).
    pub fn without_surface_evidence(mut self) -> Self {
        self.use_surface_evidence = false;
        self
    }

    /// The underlying behavioural profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Effective `(A, M)` anchor for a question, after the
    /// disaggregation described in the module docs.
    pub fn effective_anchor(&self, question: &Question) -> (f64, f64) {
        let id = self.profile.id;
        let kind = question.taxonomy;
        match &question.body {
            // Sibling rounds are the MCQ regime: same option-picking
            // task, just with taxonomy-child options and an abstain slot.
            QuestionBody::Mcq { .. } | QuestionBody::Sibling { .. } => {
                calib::anchor(id, kind, QuestionDataset::Mcq)
            }
            QuestionBody::TrueFalse { negative, .. } => {
                let (a_easy, m_easy) = calib::anchor(id, kind, QuestionDataset::Easy);
                match negative {
                    None | Some(NegativeKind::Easy) => (a_easy, m_easy),
                    Some(NegativeKind::Hard) => {
                        let (a_hard, m_hard) = calib::anchor(id, kind, QuestionDataset::Hard);
                        (
                            (2.0 * a_hard - a_easy).clamp(0.0, 1.0),
                            (2.0 * m_hard - m_easy).clamp(0.0, 1.0),
                        )
                    }
                }
            }
        }
    }

    /// Decide the probabilities for one question under a prompt setting
    /// (assuming the full five-shot exemplar block for few-shot).
    pub fn decide(&self, question: &Question, setting: PromptSetting) -> Decision {
        self.decide_with_shots(question, setting, PromptSetting::SHOTS)
    }

    /// Like [`KnowledgeModel::decide`] with an explicit exemplar count:
    /// the abstention-suppressing effect of few-shot prompting saturates
    /// exponentially in the number of exemplars actually shown (most of
    /// the benefit arrives with the first one or two).
    pub fn decide_with_shots(
        &self,
        question: &Question,
        setting: PromptSetting,
        shots: usize,
    ) -> Decision {
        let (a, m) = self.effective_anchor(question);

        // Prompt-setting effect on abstention (Finding 4).
        let miss_factor = match setting {
            PromptSetting::ZeroShot => 1.0,
            PromptSetting::FewShot => {
                let f = self.profile.fewshot_miss_factor;
                // Saturating interpolation: shots = 0 behaves like
                // zero-shot, the plateau value is the profile's factor.
                f + (1.0 - f) * (-(shots as f64) * 1.2).exp()
            }
            PromptSetting::ChainOfThought => self.profile.cot_miss_factor,
        };
        let miss_prob = (m * miss_factor).clamp(0.0, 0.995);

        // Conditional correctness at the anchor.
        let base_conditional = if m >= 1.0 - 1e-9 { 0.5 } else { (a / (1.0 - m)).clamp(0.01, 0.995) };
        let mut logit = logit(base_conditional);

        // Depth decline, centered mid-taxonomy.
        logit += self.depth_term(question);

        // Surface-form evidence, centered per regime.
        if self.use_surface_evidence {
            let evidence = similarity::with_cache(|cache| self.evidence(question, cache));
            logit += self.profile.similarity_weight * evidence;
        }

        // Prompt-setting accuracy shift.
        let acc_shift = match setting {
            PromptSetting::ZeroShot => 0.0,
            PromptSetting::FewShot => self.profile.fewshot_acc_shift,
            PromptSetting::ChainOfThought => self.profile.cot_acc_shift,
        };

        let correct_prob = (sigmoid(logit) + acc_shift).clamp(0.02, 0.99);
        Decision { miss_prob, correct_prob }
    }

    /// Depth term: negative for deeper-than-mid questions, positive
    /// above. Depth is measured at the *target* relation — for concept
    /// questions that equals the child's level; for instance typing it
    /// is the probed ancestor's level + 1, which is what Figure 6 plots.
    fn depth_term(&self, question: &Question) -> f64 {
        let levels = TaxonomyProfile::of(question.taxonomy).num_levels();
        if levels < 3 {
            return 0.0; // GeoNames: a single child level, nothing to tilt.
        }
        let max_child = (levels - 1) as f64;
        let effective = ((question.parent_level + 1) as f64).min(max_child);
        let mid = (1.0 + max_child) / 2.0;
        let centered = (effective - mid) / max_child;
        -self.profile.depth_slope * 2.0 * centered
    }

    /// Signed surface evidence in roughly [-1, 1], centered per regime.
    ///
    /// All surface lookups (trigram similarity, whole-name containment,
    /// head-noun matches) are served from the [`SimilarityCache`]
    /// interner — byte-identical to the direct functions, but each
    /// unique name's lowercase form and trigram set is computed only
    /// once per thread instead of up to five times per question.
    fn evidence(&self, question: &Question, cache: &SimilarityCache) -> f64 {
        let center = regime_center(question.taxonomy);
        // Instance typing gets an extra lexical term: a product named
        // "… Compact Pencil X137" trivially string-matches a "Pencils"
        // category for a real LLM, so head-noun containment is strong
        // evidence either way.
        // Rejection is lexically easier than confirmation: a mismatched
        // head word is glaring, while a matching one still leaves doubt
        // about the exact category.
        const LEX_CONFIRM: f64 = 0.40;
        const LEX_REJECT: f64 = 0.80;
        let lexical = |supports: &str, against: Option<&str>, weight: f64| -> f64 {
            if !question.instance_typing {
                return 0.0;
            }
            let hit = |concept: &str| cache.head_matches(&question.child, concept);
            let mut e = 0.0;
            if hit(supports) {
                e += weight;
            }
            if let Some(against) = against {
                if hit(against) {
                    e -= weight;
                }
            }
            e
        };
        // Whole-name containment: when a child's name literally embeds
        // its parent's ("Verbascum chaixii" ⊃ "Verbascum"), a real LLM
        // string-matches its way to the answer — the paper's explanation
        // for the NCBI species→genus uplift. Centered per regime (OAE
        // children *always* embed the parent, so there the term is
        // neutral; for NCBI only the species level fires).
        const CONTAINMENT: f64 = 0.6;
        let contains = |name: &str, concept: &str| -> bool { cache.contains_name(name, concept) };
        let lex_center = containment_center(question.taxonomy);
        match &question.body {
            QuestionBody::TrueFalse { candidate, expected_yes, .. } => {
                if *expected_yes {
                    let fires = contains(&question.child, candidate);
                    cache.similarity(&question.child, candidate) - center
                        + CONTAINMENT * (f64::from(fires) - lex_center)
                        + lexical(candidate, None, LEX_CONFIRM)
                } else {
                    // Correctly rejecting is easier when the child clearly
                    // belongs elsewhere (high similarity to the true
                    // parent, low to the candidate).
                    let to_true = cache.similarity(&question.child, &question.true_parent);
                    let to_cand = cache.similarity(&question.child, candidate);
                    let fires = contains(&question.child, &question.true_parent)
                        && !contains(&question.child, candidate);
                    to_true - to_cand
                        + CONTAINMENT * (f64::from(fires) - lex_center)
                        + lexical(&question.true_parent, Some(candidate), LEX_REJECT)
                }
            }
            QuestionBody::Mcq { options, correct } => {
                let to_correct = cache.similarity(&question.child, &options[*correct as usize]);
                let best_distractor = options
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != *correct as usize)
                    .map(|(_, o)| cache.similarity(&question.child, o))
                    .fold(0.0f64, f64::max);
                to_correct - best_distractor
            }
            QuestionBody::Sibling { options, correct } => match correct {
                // Gold child shown: the MCQ margin, over however many
                // children this round presents.
                Some(c) => {
                    let to_correct = cache.similarity(&question.child, &options[*c as usize]);
                    let best_distractor = options
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != *c as usize)
                        .map(|(_, o)| cache.similarity(&question.child, o))
                        .fold(0.0f64, f64::max);
                    to_correct - best_distractor
                }
                // Gold child absent: uniformly low similarity to every
                // shown child is evidence *for* the correct abstention.
                None => {
                    let best_option = options
                        .iter()
                        .map(|o| cache.similarity(&question.child, o))
                        .fold(0.0f64, f64::max);
                    regime_center(question.taxonomy) - best_option
                }
            },
        }
    }
}

/// Typical child↔parent trigram similarity per name regime; evidence is
/// centered here so taxonomy-wide aggregates stay at the anchor.
fn regime_center(kind: taxoglimpse_core::domain::TaxonomyKind) -> f64 {
    match TaxonomyProfile::of(kind).regime {
        NameRegime::Oae => 0.45,
        NameRegime::Icd => 0.20,
        NameRegime::Ncbi => 0.12,
        NameRegime::SchemaOrg => 0.12,
        NameRegime::Shopping => 0.10,
        NameRegime::AcmCcs => 0.08,
        NameRegime::GeoNames | NameRegime::Glottolog => 0.04,
    }
}

/// Expected frequency of the whole-name-containment signal per regime,
/// used to center the containment term: OAE children virtually always
/// embed the parent phrase; Schema children extend the parent stem about
/// half the time; for NCBI only the species level (one of six) fires.
fn containment_center(kind: taxoglimpse_core::domain::TaxonomyKind) -> f64 {
    match TaxonomyProfile::of(kind).regime {
        NameRegime::Oae => 0.90,
        NameRegime::SchemaOrg => 0.45,
        NameRegime::Ncbi => 0.17,
        NameRegime::Icd => 0.05,
        NameRegime::Shopping
        | NameRegime::AcmCcs
        | NameRegime::GeoNames
        | NameRegime::Glottolog => 0.0,
    }
}

fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    (p / (1.0 - p)).ln()
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_core::domain::TaxonomyKind;

    fn tf(kind: TaxonomyKind, child: &str, candidate: &str, parent: &str, level: usize, neg: Option<NegativeKind>) -> Question {
        Question {
            id: 0,
            taxonomy: kind,
            child: child.into(),
            child_level: level,
            parent_level: level - 1,
            true_parent: parent.into(),
            instance_typing: false,
            body: QuestionBody::TrueFalse {
                candidate: candidate.into(),
                expected_yes: neg.is_none(),
                negative: neg,
            },
        }
    }

    #[test]
    fn trigram_similarity_basics() {
        assert_eq!(trigram_similarity("abc", "abc"), 1.0);
        assert_eq!(trigram_similarity("abc", "xyz"), 0.0);
        assert!(trigram_similarity("Verbascum chaixii", "Verbascum") > 0.4);
        assert!(trigram_similarity("Verbascum chaixii", "Silene") < 0.1);
        // Case-insensitive.
        assert_eq!(trigram_similarity("ABC", "abc"), 1.0);
        // Short strings: exact match only.
        assert_eq!(trigram_similarity("ab", "ab"), 1.0);
        assert_eq!(trigram_similarity("ab", "cd"), 0.0);
        assert_eq!(trigram_similarity("", ""), 1.0);
    }

    #[test]
    fn trigram_similarity_is_symmetric() {
        let pairs = [("cardiac lesion AE", "acute cardiac lesion AE"), ("a b c", "c b a")];
        for (a, b) in pairs {
            assert!((trigram_similarity(a, b) - trigram_similarity(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn deeper_questions_are_harder() {
        let k = KnowledgeModel::new(ModelId::Gpt4);
        let shallow = tf(TaxonomyKind::Glottolog, "Sinitic", "Sino-Tibetan", "Sino-Tibetan", 1, None);
        let deep = tf(TaxonomyKind::Glottolog, "Hailu", "Hakka-Chinese", "Hakka-Chinese", 5, None);
        let d_shallow = k.decide(&shallow, PromptSetting::ZeroShot);
        let d_deep = k.decide(&deep, PromptSetting::ZeroShot);
        assert!(
            d_shallow.correct_prob > d_deep.correct_prob,
            "shallow {} vs deep {}",
            d_shallow.correct_prob,
            d_deep.correct_prob
        );
    }

    #[test]
    fn species_genus_similarity_uplift() {
        // NCBI species embed the genus name: a species-level positive
        // should be easier than an equally deep question with unrelated
        // names.
        let k = KnowledgeModel::new(ModelId::Gpt4);
        let similar = tf(TaxonomyKind::Ncbi, "Verbascum chaixii", "Verbascum", "Verbascum", 6, None);
        let dissimilar = tf(TaxonomyKind::Ncbi, "Panthera leo", "Verbascum", "Verbascum", 6, None);
        let a = k.decide(&similar, PromptSetting::ZeroShot);
        let b = k.decide(&dissimilar, PromptSetting::ZeroShot);
        assert!(a.correct_prob > b.correct_prob + 0.05);
    }

    #[test]
    fn hard_negative_anchor_is_below_easy() {
        let k = KnowledgeModel::new(ModelId::Gpt35);
        let easy = tf(TaxonomyKind::Ncbi, "x", "y", "p", 3, Some(NegativeKind::Easy));
        let hard = tf(TaxonomyKind::Ncbi, "x", "y", "p", 3, Some(NegativeKind::Hard));
        let (ae, _) = k.effective_anchor(&easy);
        let (ah, _) = k.effective_anchor(&hard);
        assert!(ah < ae, "hard {ah} vs easy {ae}");
        // And the disaggregation identity: (A_easy + A_nh)/2 = A_hard.
        let (paper_hard, _) = calib::anchor(ModelId::Gpt35, TaxonomyKind::Ncbi, QuestionDataset::Hard);
        assert!(((ae + ah) / 2.0 - paper_hard).abs() < 1e-9);
    }

    #[test]
    fn fewshot_suppresses_misses_cot_inflates_them() {
        let k = KnowledgeModel::new(ModelId::Llama2_7b);
        let q = tf(TaxonomyKind::Amazon, "a", "b", "b", 2, None);
        let zero = k.decide(&q, PromptSetting::ZeroShot);
        let few = k.decide(&q, PromptSetting::FewShot);
        let cot = k.decide(&q, PromptSetting::ChainOfThought);
        assert!(few.miss_prob < zero.miss_prob * 0.2);
        assert!(cot.miss_prob >= zero.miss_prob);
    }

    #[test]
    fn probabilities_stay_in_range() {
        for id in ModelId::ALL {
            let k = KnowledgeModel::new(id);
            for kind in TaxonomyKind::ALL {
                for level in 1..TaxonomyProfile::of(kind).num_levels() {
                    for neg in [None, Some(NegativeKind::Easy), Some(NegativeKind::Hard)] {
                        let q = tf(kind, "child name", "candidate name", "parent name", level, neg);
                        let d = k.decide(&q, PromptSetting::ZeroShot);
                        assert!((0.0..=1.0).contains(&d.miss_prob), "{id} {kind} miss {}", d.miss_prob);
                        assert!((0.0..=1.0).contains(&d.correct_prob), "{id} {kind} c {}", d.correct_prob);
                    }
                }
            }
        }
    }

    #[test]
    fn mcq_anchor_is_used_for_mcq() {
        let k = KnowledgeModel::new(ModelId::Falcon7b);
        let q = Question {
            id: 0,
            taxonomy: TaxonomyKind::Ebay,
            child: "c".into(),
            child_level: 1,
            parent_level: 0,
            true_parent: "p".into(),
            instance_typing: false,
            body: QuestionBody::Mcq {
                options: ["p".into(), "q".into(), "r".into(), "s".into()],
                correct: 0,
            },
        };
        let (a, m) = k.effective_anchor(&q);
        assert_eq!((a, m), calib::anchor(ModelId::Falcon7b, TaxonomyKind::Ebay, QuestionDataset::Mcq));
    }
}
