//! The simulated LLM: a [`LanguageModel`] whose answers follow the
//! knowledge model's probabilities, deterministically per question.

use crate::knowledge::{Decision, KnowledgeModel};
use crate::profile::ModelId;
use crate::respond::{render, Verdict};
use crate::similarity;
use crate::tokenizer::Tokenizer;
use std::sync::Mutex;
use taxoglimpse_core::model::{LanguageModel, ModelError, Query, Response};
use taxoglimpse_core::question::{Question, QuestionBody};
use taxoglimpse_synth::rng::{hash_str, mix64, StreamHasher};

/// Cumulative usage counters for one simulated model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UsageStats {
    /// Queries answered since the last reset.
    pub queries: u64,
    /// Prompt tokens consumed.
    pub prompt_tokens: u64,
    /// Completion tokens produced.
    pub completion_tokens: u64,
}

/// A simulated model from the eighteen-model zoo.
#[derive(Debug)]
pub struct SimulatedLlm {
    id: ModelId,
    knowledge: KnowledgeModel,
    seed: u64,
    tokenizer: Tokenizer,
    usage: Mutex<UsageStats>,
}

impl SimulatedLlm {
    /// Create the simulated model with the default seed.
    pub fn new(id: ModelId) -> Self {
        Self::with_seed(id, 0x11AA)
    }

    /// Create with an explicit decision seed (varying the seed varies the
    /// per-question draws while keeping the calibrated aggregates).
    pub fn with_seed(id: ModelId, seed: u64) -> Self {
        SimulatedLlm {
            id,
            knowledge: KnowledgeModel::new(id),
            seed: mix64(seed ^ (id.row() as u64) << 40),
            tokenizer: Tokenizer::default(),
            usage: Mutex::new(UsageStats::default()),
        }
    }

    /// Which model this simulates.
    pub fn id(&self) -> ModelId {
        self.id
    }

    /// Ablated variant that ignores all surface-form (name) evidence —
    /// used by the `ablation` experiment to show the NCBI species→genus
    /// uplift disappears without it.
    pub fn without_surface_evidence(mut self) -> Self {
        self.knowledge = self.knowledge.without_surface_evidence();
        self
    }

    /// The decision probabilities this model assigns to a question (for
    /// analysis and tests).
    pub fn decide(&self, query: &Query<'_>) -> Decision {
        self.knowledge.decide(query.question, query.setting)
    }

    /// Usage counters since the last [`LanguageModel::reset`].
    pub fn usage(&self) -> UsageStats {
        *self.usage.lock().expect("usage lock not poisoned")
    }

    /// Hash of the question's stable identity under one prompt setting —
    /// the shared base every per-question draw stream mixes from.
    ///
    /// Streamed equivalent of hashing the old `"{tax}|{child}|{cand}|{id}"`
    /// key (see `StreamHasher`'s equivalence tests): same 64-bit value,
    /// no key `String` — and computed once per verdict instead of once
    /// per draw (a verdict makes two to seven draws).
    fn draw_base(&self, question: &Question, setting_tag: u64) -> u64 {
        let mut h = StreamHasher::new(self.seed ^ setting_tag);
        h.write_str(question.taxonomy.label());
        h.write_str("|");
        h.write_str(&question.child);
        h.write_str("|");
        h.write_str(question.shown_candidate());
        h.write_str("|");
        h.write_decimal(question.id);
        h.finish()
    }

    /// Uniform draw in [0,1) from a draw base and stream index.
    fn draw_from(base: u64, stream: u64) -> f64 {
        let h = mix64(base ^ stream.wrapping_mul(0x9E3779B97F4A7C15));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn verdict(&self, query: &Query<'_>) -> Verdict {
        // Condition on what the model actually sees: the number of
        // answered exemplars in the prompt (few-shot saturation).
        let shots = query.prompt.matches("Example: ").count();
        self.verdict_with_shots(query, shots)
    }

    /// [`Self::verdict`] with the exemplar count already known — the
    /// batch path counts the shared prefix's exemplars once instead of
    /// rescanning the full prompt per query.
    fn verdict_with_shots(&self, query: &Query<'_>, shots: usize) -> Verdict {
        let question = query.question;
        let decision = self.knowledge.decide_with_shots(question, query.setting, shots);
        let setting_tag = query.setting as u64 + 1;
        let base = self.draw_base(question, setting_tag);

        if Self::draw_from(base, 0) < decision.miss_prob {
            return Verdict::IDontKnow;
        }
        let correct = Self::draw_from(base, 1) < decision.correct_prob;
        match &question.body {
            QuestionBody::TrueFalse { expected_yes, .. } => {
                if correct == *expected_yes {
                    Verdict::Yes
                } else {
                    Verdict::No
                }
            }
            QuestionBody::Mcq { options, correct: gold } => {
                if correct {
                    Verdict::Option(*gold)
                } else {
                    // Wrong answers gravitate to the most surface-similar
                    // distractor, like a confused human.
                    similarity::with_cache(|cache| {
                        let mut best = (0u8, f64::NEG_INFINITY);
                        for (i, option) in options.iter().enumerate() {
                            if i as u8 == *gold {
                                continue;
                            }
                            let sim = cache.similarity(&question.child, option)
                                + 0.05 * Self::draw_from(base, 2 + i as u64);
                            if sim > best.1 {
                                best = (i as u8, sim);
                            }
                        }
                        Verdict::Option(best.0)
                    })
                }
            }
            QuestionBody::Sibling { options, correct: gold } => match gold {
                Some(gold) => {
                    if correct {
                        Verdict::Option(*gold)
                    } else if options.len() == 1 {
                        // Only the gold child is shown: the sole wrong
                        // move left is abstaining.
                        Verdict::IDontKnow
                    } else {
                        similarity::with_cache(|cache| {
                            let mut best = (0u8, f64::NEG_INFINITY);
                            for (i, option) in options.iter().enumerate() {
                                if i as u8 == *gold {
                                    continue;
                                }
                                let sim = cache.similarity(&question.child, option)
                                    + 0.05 * Self::draw_from(base, 2 + i as u64);
                                if sim > best.1 {
                                    best = (i as u8, sim);
                                }
                            }
                            Verdict::Option(best.0)
                        })
                    }
                }
                // Gold child not among the shown options: the correct
                // behaviour is the abstain slot; the failure mode is
                // committing to the most surface-similar shown child —
                // exactly the hallucinated-descent error the constrained
                // workload is built to measure.
                None => {
                    if correct {
                        Verdict::IDontKnow
                    } else {
                        similarity::with_cache(|cache| {
                            let mut best = (0u8, f64::NEG_INFINITY);
                            for (i, option) in options.iter().enumerate() {
                                let sim = cache.similarity(&question.child, option)
                                    + 0.05 * Self::draw_from(base, 2 + i as u64);
                                if sim > best.1 {
                                    best = (i as u8, sim);
                                }
                            }
                            Verdict::Option(best.0)
                        })
                    }
                }
            },
        }
    }
}

/// Precomputed state of a batch's shared few-shot prefix: everything
/// `answer` derives from the prompt that splits cleanly at the
/// prefix/suffix boundary.
struct BatchPrefix {
    len: usize,
    shots: usize,
    prompt_tokens: u64,
    noise: StreamHasher,
}

impl SimulatedLlm {
    /// The batch's shared prefix, if every query declares the same
    /// `prefix_len`, the bytes verify against the first query, and the
    /// prefix ends in `'\n'` (as `render_prefix` output always does).
    ///
    /// The trailing newline is what makes per-query work splittable at
    /// the boundary with *exact* equality to the unsplit computation:
    /// `"Example: "` contains no `'\n'`, so no occurrence can span the
    /// boundary, and the tokenizer derives tokens from whitespace-split
    /// words, so token counts are additive across a whitespace
    /// boundary. The noise hasher is a [`StreamHasher`], documented
    /// byte-for-byte equal to one-shot hashing however the input is
    /// split.
    fn batch_prefix<'p>(queries: &[Query<'p>]) -> Option<&'p str> {
        let first = queries.first()?;
        if first.prefix_len == 0 {
            return None;
        }
        let prefix = first.prompt.get(..first.prefix_len)?;
        if !prefix.ends_with('\n') {
            return None;
        }
        queries
            .iter()
            .all(|q| {
                q.prefix_len == prefix.len()
                    && q.prompt.len() >= prefix.len()
                    && q.prompt.as_bytes()[..prefix.len()] == *prefix.as_bytes()
            })
            .then_some(prefix)
    }
}

impl LanguageModel for SimulatedLlm {
    fn name(&self) -> &str {
        self.id.display_name()
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        let verdict = self.verdict(query);
        let noise = hash_str(self.seed ^ 0xF00D, &query.prompt);
        let text = render(self.id, query.question, verdict, query.setting, noise);
        let mut usage = self.usage.lock().expect("usage lock not poisoned");
        usage.queries += 1;
        usage.prompt_tokens += self.tokenizer.count(&query.prompt) as u64;
        usage.completion_tokens += self.tokenizer.count(&text) as u64;
        Ok(Response::new(text))
    }

    /// Batched answering: answers are byte-identical to per-query
    /// [`Self::answer`] calls; only the per-query *work* changes. When
    /// the batch shares a verified few-shot prefix, the exemplar scan,
    /// the prompt-noise hash state and the prompt token count of the
    /// prefix are computed once and only suffixes are processed per
    /// query; usage counters are merged under a single lock either way.
    fn answer_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Response, ModelError>> {
        let prefix_state = Self::batch_prefix(queries).map(|prefix| {
            let mut noise = StreamHasher::new(self.seed ^ 0xF00D);
            noise.write_str(prefix);
            BatchPrefix {
                len: prefix.len(),
                shots: prefix.matches("Example: ").count(),
                prompt_tokens: self.tokenizer.count(prefix) as u64,
                noise,
            }
        });
        let mut local = UsageStats::default();
        let results: Vec<Result<Response, ModelError>> = queries
            .iter()
            .map(|query| {
                let (shots, noise, prompt_tokens) = match &prefix_state {
                    Some(p) => {
                        let suffix = &query.prompt[p.len..];
                        let mut h = p.noise.clone();
                        h.write_str(suffix);
                        (
                            p.shots + suffix.matches("Example: ").count(),
                            h.finish(),
                            p.prompt_tokens + self.tokenizer.count(suffix) as u64,
                        )
                    }
                    None => (
                        query.prompt.matches("Example: ").count(),
                        hash_str(self.seed ^ 0xF00D, query.prompt),
                        self.tokenizer.count(query.prompt) as u64,
                    ),
                };
                let verdict = self.verdict_with_shots(query, shots);
                let text = render(self.id, query.question, verdict, query.setting, noise);
                local.queries += 1;
                local.prompt_tokens += prompt_tokens;
                local.completion_tokens += self.tokenizer.count(&text) as u64;
                Ok(Response::new(text))
            })
            .collect();
        let mut usage = self.usage.lock().expect("usage lock not poisoned");
        usage.queries += local.queries;
        usage.prompt_tokens += local.prompt_tokens;
        usage.completion_tokens += local.completion_tokens;
        results
    }

    fn reset(&self) {
        *self.usage.lock().expect("usage lock not poisoned") = UsageStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
    use taxoglimpse_core::domain::TaxonomyKind;
    use taxoglimpse_core::eval::{EvalConfig, Evaluator};
    use taxoglimpse_core::prompts::PromptSetting;
    use taxoglimpse_synth::{generate, GenOptions};

    #[test]
    fn answers_are_deterministic() {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 7, scale: 1.0 }).unwrap();
        let d = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 7)
            .sample_cap(Some(20))
            .build(QuestionDataset::Hard)
            .unwrap();
        let m = SimulatedLlm::new(ModelId::Gpt4);
        let e = Evaluator::default();
        let r1 = e.run(&m, &d);
        let r2 = e.run(&m, &d);
        assert_eq!(r1.overall, r2.overall);
    }

    #[test]
    fn gpt4_reproduces_its_ebay_hard_anchor() {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 11, scale: 1.0 }).unwrap();
        let d = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 11).build(QuestionDataset::Hard).unwrap();
        let m = SimulatedLlm::new(ModelId::Gpt4);
        let report = Evaluator::default().run(&m, &d);
        // Paper: A=0.921, M=0.003 on eBay hard.
        assert!((report.overall.accuracy() - 0.921).abs() < 0.06, "A={}", report.overall.accuracy());
        assert!(report.overall.miss_rate() < 0.03, "M={}", report.overall.miss_rate());
    }

    #[test]
    fn llama7b_misses_almost_everything_zero_shot() {
        let t = generate(TaxonomyKind::Amazon, GenOptions { seed: 5, scale: 0.05 }).unwrap();
        let d = DatasetBuilder::new(&t, TaxonomyKind::Amazon, 5)
            .sample_cap(Some(60))
            .build(QuestionDataset::Hard)
            .unwrap();
        let m = SimulatedLlm::new(ModelId::Llama2_7b);
        let report = Evaluator::default().run(&m, &d);
        assert!(report.overall.miss_rate() > 0.85, "M={}", report.overall.miss_rate());
        // Few-shot prompting rescues it (Finding 4 / Figure 4(c,d)).
        let few = Evaluator::builder().with_config(EvalConfig { setting: PromptSetting::FewShot, ..Default::default() }).build().run(&m, &d);
        assert!(few.overall.miss_rate() < 0.3, "few-shot M={}", few.overall.miss_rate());
        assert!(few.overall.accuracy() > report.overall.accuracy());
    }

    #[test]
    fn usage_accounting() {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 2, scale: 0.5 }).unwrap();
        let d = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 2)
            .sample_cap(Some(10))
            .build(QuestionDataset::Mcq)
            .unwrap();
        let m = SimulatedLlm::new(ModelId::Mixtral8x7b);
        Evaluator::default().run(&m, &d);
        let usage = m.usage();
        assert_eq!(usage.queries as usize, d.len());
        assert!(usage.prompt_tokens > usage.queries * 5);
        assert!(usage.completion_tokens >= usage.queries);
        m.reset();
        assert_eq!(m.usage(), UsageStats::default());
    }

    #[test]
    fn batch_answers_and_usage_match_single_calls() {
        use taxoglimpse_core::model::Query;
        use taxoglimpse_core::prompts::{render_prefix, render_prompt_into};
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 9, scale: 0.3 }).unwrap();
        let d = DatasetBuilder::new(&t, TaxonomyKind::Ebay, 9)
            .sample_cap(Some(30))
            .build(QuestionDataset::Hard)
            .unwrap();
        let batched = SimulatedLlm::new(ModelId::Gpt4);
        let sequential = SimulatedLlm::new(ModelId::Gpt4);
        for setting in [PromptSetting::ZeroShot, PromptSetting::FewShot] {
            for slice in &d.levels {
                let prefix = render_prefix(
                    setting,
                    Default::default(),
                    &slice.exemplars,
                    PromptSetting::SHOTS,
                );
                let prompts: Vec<String> = slice
                    .questions
                    .iter()
                    .map(|q| {
                        let mut s = String::new();
                        render_prompt_into(q, setting, Default::default(), &prefix, &mut s);
                        s
                    })
                    .collect();
                let queries: Vec<Query<'_>> = prompts
                    .iter()
                    .zip(&slice.questions)
                    .map(|(p, q)| Query::new(p, q, setting).with_prefix_len(prefix.len()))
                    .collect();
                let batch = batched.answer_batch(&queries);
                let singles: Vec<_> = queries.iter().map(|q| sequential.answer(q)).collect();
                assert_eq!(batch, singles, "{setting:?}: batched path diverged");
            }
        }
        assert_eq!(batched.usage(), sequential.usage(), "usage accounting diverged");
    }

    #[test]
    fn different_seeds_change_individual_answers_not_aggregates() {
        let t = generate(TaxonomyKind::Google, GenOptions { seed: 3, scale: 0.3 }).unwrap();
        let d = DatasetBuilder::new(&t, TaxonomyKind::Google, 3).build(QuestionDataset::Easy).unwrap();
        let a = Evaluator::default().run(&SimulatedLlm::with_seed(ModelId::Gpt35, 1), &d);
        let b = Evaluator::default().run(&SimulatedLlm::with_seed(ModelId::Gpt35, 2), &d);
        // Aggregates stay close to each other (both calibrated)…
        assert!((a.overall.accuracy() - b.overall.accuracy()).abs() < 0.08);
        // …but the seeds genuinely differ somewhere.
        assert_ne!(a.overall, b.overall);
    }
}
