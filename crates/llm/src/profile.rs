//! The eighteen evaluated models and their static properties.

use std::fmt;
use std::str::FromStr;

/// Model families (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// OpenAI GPTs (closed, API-only).
    Gpt,
    /// Anthropic Claude-3 (closed, API-only).
    Claude,
    /// Meta Llama-2 chat models.
    Llama2,
    /// Meta Llama-3 instruct models.
    Llama3,
    /// Google Flan-T5 encoder-decoders.
    FlanT5,
    /// TIIUAE Falcon instruct models.
    Falcon,
    /// LMSYS Vicuna (domain-agnostic fine-tuned Llama-2).
    Vicuna,
    /// Mistral AI dense + MoE models.
    Mistral,
    /// LLMs4OL: Flan-T5-3B + domain-specific instruction tuning.
    Llms4Ol,
}

/// The eighteen models, in the paper's table row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// GPT-3.5 (2023-05-15 API version).
    Gpt35,
    /// GPT-4 (2023-11-06-preview).
    Gpt4,
    /// Claude-3-Opus.
    Claude3,
    /// Llama-2-7B-chat.
    Llama2_7b,
    /// Llama-2-13B-chat.
    Llama2_13b,
    /// Llama-2-70B-chat.
    Llama2_70b,
    /// Llama-3-8B-instruct.
    Llama3_8b,
    /// Llama-3-70B-instruct.
    Llama3_70b,
    /// Flan-T5-3B (XL).
    FlanT5_3b,
    /// Flan-T5-11B (XXL).
    FlanT5_11b,
    /// Falcon-7B-Instruct.
    Falcon7b,
    /// Falcon-40B-Instruct.
    Falcon40b,
    /// Vicuna-7B-v1.5.
    Vicuna7b,
    /// Vicuna-13B-v1.5.
    Vicuna13b,
    /// Vicuna-33B-v1.3.
    Vicuna33b,
    /// Mistral-7B-Instruct.
    Mistral7b,
    /// Mixtral-8x7B-Instruct.
    Mixtral8x7b,
    /// LLMs4OL (instruction-tuned Flan-T5-3B).
    Llms4Ol,
}

impl ModelId {
    /// All eighteen models in table row order.
    pub const ALL: [ModelId; 18] = [
        ModelId::Gpt35,
        ModelId::Gpt4,
        ModelId::Claude3,
        ModelId::Llama2_7b,
        ModelId::Llama2_13b,
        ModelId::Llama2_70b,
        ModelId::Llama3_8b,
        ModelId::Llama3_70b,
        ModelId::FlanT5_3b,
        ModelId::FlanT5_11b,
        ModelId::Falcon7b,
        ModelId::Falcon40b,
        ModelId::Vicuna7b,
        ModelId::Vicuna13b,
        ModelId::Vicuna33b,
        ModelId::Mistral7b,
        ModelId::Mixtral8x7b,
        ModelId::Llms4Ol,
    ];

    /// Display name as printed in the paper's tables.
    pub fn display_name(self) -> &'static str {
        match self {
            ModelId::Gpt35 => "GPT-3.5",
            ModelId::Gpt4 => "GPT-4",
            ModelId::Claude3 => "Claude-3",
            ModelId::Llama2_7b => "Llama-2-7B",
            ModelId::Llama2_13b => "Llama-2-13B",
            ModelId::Llama2_70b => "Llama-2-70B",
            ModelId::Llama3_8b => "Llama-3-8B",
            ModelId::Llama3_70b => "Llama-3-70B",
            ModelId::FlanT5_3b => "Flan-T5-3B",
            ModelId::FlanT5_11b => "Flan-T5-11B",
            ModelId::Falcon7b => "Falcon-7B",
            ModelId::Falcon40b => "Falcon-40B",
            ModelId::Vicuna7b => "Vicuna-7B",
            ModelId::Vicuna13b => "Vicuna-13B",
            ModelId::Vicuna33b => "Vicuna-33B",
            ModelId::Mistral7b => "Mistral",
            ModelId::Mixtral8x7b => "Mixtral",
            ModelId::Llms4Ol => "LLMs4OL",
        }
    }

    /// Model family.
    pub fn family(self) -> ModelFamily {
        match self {
            ModelId::Gpt35 | ModelId::Gpt4 => ModelFamily::Gpt,
            ModelId::Claude3 => ModelFamily::Claude,
            ModelId::Llama2_7b | ModelId::Llama2_13b | ModelId::Llama2_70b => ModelFamily::Llama2,
            ModelId::Llama3_8b | ModelId::Llama3_70b => ModelFamily::Llama3,
            ModelId::FlanT5_3b | ModelId::FlanT5_11b => ModelFamily::FlanT5,
            ModelId::Falcon7b | ModelId::Falcon40b => ModelFamily::Falcon,
            ModelId::Vicuna7b | ModelId::Vicuna13b | ModelId::Vicuna33b => ModelFamily::Vicuna,
            ModelId::Mistral7b | ModelId::Mixtral8x7b => ModelFamily::Mistral,
            ModelId::Llms4Ol => ModelFamily::Llms4Ol,
        }
    }

    /// Nominal parameter count in billions (`None` for closed models
    /// that never disclosed sizes).
    pub fn params_billion(self) -> Option<f64> {
        match self {
            ModelId::Gpt35 | ModelId::Gpt4 | ModelId::Claude3 => None,
            ModelId::Llama2_7b => Some(7.0),
            ModelId::Llama2_13b => Some(13.0),
            ModelId::Llama2_70b => Some(70.0),
            ModelId::Llama3_8b => Some(8.0),
            ModelId::Llama3_70b => Some(70.0),
            ModelId::FlanT5_3b => Some(3.0),
            ModelId::FlanT5_11b => Some(11.0),
            ModelId::Falcon7b => Some(7.0),
            ModelId::Falcon40b => Some(40.0),
            ModelId::Vicuna7b => Some(7.0),
            ModelId::Vicuna13b => Some(13.0),
            ModelId::Vicuna33b => Some(33.0),
            ModelId::Mistral7b => Some(7.0),
            ModelId::Mixtral8x7b => Some(46.7),
            ModelId::Llms4Ol => Some(3.0),
        }
    }

    /// Whether the model is open-weight (deployable on local GPUs).
    pub fn is_open(self) -> bool {
        self.params_billion().is_some()
    }

    /// Row index in the paper's tables (and in [`crate::calib`]).
    pub fn row(self) -> usize {
        ModelId::ALL.iter().position(|&m| m == self).expect("ALL covers every variant")
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

impl FromStr for ModelId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelId::ALL
            .into_iter()
            .find(|m| m.display_name().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown model {s:?}"))
    }
}

/// Static behavioural profile of one model: everything the simulator
/// needs besides the per-taxonomy calibration anchors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelProfile {
    /// Which model this is.
    pub id: ModelId,
    /// Root-to-leaf knowledge decline steepness in logit space
    /// (Finding 2). Larger = steeper decline.
    pub depth_slope: f64,
    /// Weight on surface-form (trigram) evidence. Models lean on name
    /// overlap when parametric knowledge runs out; this term produces
    /// the NCBI and OAE leaf-level uplifts.
    pub similarity_weight: f64,
    /// Multiplier applied to the miss rate under few-shot prompting
    /// (< 1: exemplars suppress abstention; Finding 4).
    pub fewshot_miss_factor: f64,
    /// Multiplier applied to the miss rate under CoT prompting
    /// (> 1 for abstention-prone models; ≈ 1 for the strongest).
    pub cot_miss_factor: f64,
    /// Additive shift to conditional accuracy (probability points) under
    /// few-shot prompting, for models that mainly benefit from seeing
    /// the format.
    pub fewshot_acc_shift: f64,
    /// Additive shift to conditional accuracy under CoT.
    pub cot_acc_shift: f64,
}

impl ModelProfile {
    /// The calibrated profile for `id`.
    pub fn of(id: ModelId) -> Self {
        use ModelId::*;
        // Temperament calibration, derived from §4.4's observations:
        // Llama-2-7B's misses collapse under few-shot and rise under CoT;
        // GPT-4 is stable under both; zero-miss models (Flan-T5s,
        // LLMs4OL, Falcon-7B) have nothing to suppress.
        let (fewshot_miss_factor, cot_miss_factor, fewshot_acc_shift, cot_acc_shift) = match id {
            Gpt4 => (0.8, 1.05, 0.005, -0.005),
            Gpt35 => (0.6, 1.15, 0.01, -0.01),
            Claude3 => (0.6, 1.1, 0.01, -0.01),
            Llama2_7b => (0.12, 1.4, 0.05, -0.02),
            Llama2_13b => (0.5, 1.3, 0.01, -0.02),
            Llama2_70b => (0.6, 1.2, 0.01, -0.01),
            Llama3_8b => (0.7, 1.1, 0.005, -0.01),
            Llama3_70b => (0.5, 1.2, 0.01, -0.01),
            FlanT5_3b | FlanT5_11b | Llms4Ol => (1.0, 1.0, 0.005, -0.005),
            Falcon7b => (1.0, 1.0, 0.0, 0.0),
            Falcon40b => (0.3, 1.3, 0.05, -0.03),
            Vicuna7b => (0.9, 1.1, 0.01, -0.01),
            Vicuna13b => (0.5, 1.3, 0.02, -0.02),
            Vicuna33b => (0.7, 1.2, 0.01, -0.01),
            Mistral7b => (0.4, 1.3, 0.02, -0.02),
            Mixtral8x7b => (0.6, 1.2, 0.01, -0.01),
        };
        // Depth slope: every model declines root-to-leaf; weaker models
        // decline faster. Similarity weight: all models exploit surface
        // overlap, instruction-tuned ones slightly less (they rely on
        // tuned knowledge).
        let (depth_slope, similarity_weight) = match id {
            Gpt4 | Claude3 => (0.9, 1.2),
            Gpt35 => (1.0, 1.2),
            Llama3_70b | Llama3_8b => (1.0, 1.3),
            Llama2_70b => (1.1, 1.3),
            Llama2_13b => (1.2, 1.3),
            Llama2_7b => (0.6, 0.8),
            FlanT5_3b | FlanT5_11b => (1.0, 1.2),
            Falcon7b => (0.1, 0.1), // near-coin-flip everywhere
            Falcon40b => (0.5, 0.6),
            Vicuna7b | Vicuna33b => (1.0, 1.2),
            Vicuna13b => (1.1, 1.0),
            Mistral7b => (0.9, 0.9),
            Mixtral8x7b => (1.0, 1.2),
            Llms4Ol => (0.6, 0.9), // tuning flattens the decline (Fig. 3)
        };
        ModelProfile {
            id,
            depth_slope,
            similarity_weight,
            fewshot_miss_factor,
            cot_miss_factor,
            fewshot_acc_shift,
            cot_acc_shift,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_models() {
        assert_eq!(ModelId::ALL.len(), 18);
        let mut rows: Vec<usize> = ModelId::ALL.iter().map(|m| m.row()).collect();
        rows.sort_unstable();
        assert_eq!(rows, (0..18).collect::<Vec<_>>());
    }

    #[test]
    fn families_are_the_nine_series() {
        let mut fams: Vec<ModelFamily> = ModelId::ALL.iter().map(|m| m.family()).collect();
        fams.sort_by_key(|f| format!("{f:?}"));
        fams.dedup();
        assert_eq!(fams.len(), 9);
    }

    #[test]
    fn closed_models_hide_sizes() {
        assert!(ModelId::Gpt4.params_billion().is_none());
        assert!(!ModelId::Claude3.is_open());
        assert_eq!(ModelId::Llama2_70b.params_billion(), Some(70.0));
        assert!(ModelId::FlanT5_3b.is_open());
    }

    #[test]
    fn from_str_round_trips() {
        for m in ModelId::ALL {
            assert_eq!(m.display_name().parse::<ModelId>().unwrap(), m);
        }
        assert!("GPT-5".parse::<ModelId>().is_err());
    }

    #[test]
    fn profiles_reflect_finding_4_temperaments() {
        let llama7 = ModelProfile::of(ModelId::Llama2_7b);
        let gpt4 = ModelProfile::of(ModelId::Gpt4);
        // Few-shot suppresses Llama-2-7B's abstention far more than GPT-4's.
        assert!(llama7.fewshot_miss_factor < gpt4.fewshot_miss_factor);
        // CoT inflates Llama-2-7B's misses more than GPT-4's.
        assert!(llama7.cot_miss_factor > gpt4.cot_miss_factor);
        // Zero-miss models have neutral miss factors.
        let flan = ModelProfile::of(ModelId::FlanT5_11b);
        assert_eq!(flan.fewshot_miss_factor, 1.0);
    }

    #[test]
    fn llms4ol_has_flattest_decline_among_tuned() {
        let tuned = ModelProfile::of(ModelId::Llms4Ol);
        let backbone = ModelProfile::of(ModelId::FlanT5_3b);
        assert!(tuned.depth_slope < backbone.depth_slope);
    }
}
