//! Domain-specific instruction tuning (Finding 3).
//!
//! LLMs4OL is Flan-T5-3B plus taxonomy instruction tuning, and is the
//! only method in the paper that *stably* improves accuracy. The zoo
//! ships LLMs4OL as its own calibrated model; this module additionally
//! provides a generic [`InstructionTuned`] wrapper so users can apply
//! the same treatment to any base model: it intercepts the base model's
//! wrong answers on the tuned taxonomies and corrects a configurable
//! fraction of them (equivalently, it boosts conditional accuracy and
//! eliminates abstention, which is what the LLMs4OL rows show: zero
//! miss rate and uplifted accuracy).

use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::model::{LanguageModel, ModelError, Query, Response};
use taxoglimpse_core::parse::{parse_mcq, parse_tf, ParsedAnswer};
use taxoglimpse_core::prompts::render_gold;
use taxoglimpse_core::question::QuestionKind;
use taxoglimpse_synth::rng::{hash_str, mix64};

/// A base model wrapped with domain-specific instruction tuning.
pub struct InstructionTuned<M> {
    base: M,
    name: String,
    /// Taxonomies covered by the tuning data (`None` = all ten, like our
    /// adapted LLMs4OL; the original covered general/geo/medical only).
    domains: Option<Vec<TaxonomyKind>>,
    /// Fraction of the base model's wrong/missed answers the tuning
    /// fixes, in `[0, 1]`.
    fix_rate: f64,
    seed: u64,
}

impl<M: LanguageModel> InstructionTuned<M> {
    /// Wrap `base`. `fix_rate` is the fraction of its errors (wrong
    /// answers *and* abstentions) corrected on the tuned taxonomies.
    pub fn new(base: M, fix_rate: f64, seed: u64) -> Self {
        let name = format!("{}+it", base.name());
        InstructionTuned { base, name, domains: None, fix_rate: fix_rate.clamp(0.0, 1.0), seed }
    }

    /// Restrict tuning to specific taxonomies (questions outside them
    /// pass through to the base model untouched).
    pub fn with_domains(mut self, domains: Vec<TaxonomyKind>) -> Self {
        self.domains = Some(domains);
        self
    }

    fn covers(&self, kind: TaxonomyKind) -> bool {
        match &self.domains {
            None => true,
            Some(d) => d.contains(&kind),
        }
    }

    /// The wrapped base model.
    pub fn base(&self) -> &M {
        &self.base
    }

    /// Apply the tuning treatment to one successful base delivery — the
    /// pure post-processing step shared by `answer` and `answer_batch`.
    fn tune(&self, query: &Query<'_>, base_answer: Response) -> Response {
        let question = query.question;
        if !self.covers(question.taxonomy) {
            return base_answer;
        }
        let parsed = match question.kind() {
            QuestionKind::TrueFalse => parse_tf(&base_answer.text),
            QuestionKind::Mcq => parse_mcq(&base_answer.text),
        };
        let gold = question.gold();
        let is_correct = matches!(
            (parsed, gold),
            (ParsedAnswer::Yes, taxoglimpse_core::question::GoldAnswer::Yes)
                | (ParsedAnswer::No, taxoglimpse_core::question::GoldAnswer::No)
        ) || matches!((parsed, gold), (ParsedAnswer::Option(i), taxoglimpse_core::question::GoldAnswer::Option(j)) if i == j)
            || matches!(
                (parsed, gold),
                (ParsedAnswer::IDontKnow, taxoglimpse_core::question::GoldAnswer::Abstain)
            );
        if is_correct {
            return base_answer;
        }
        // Deterministically fix a `fix_rate` fraction of the errors.
        let h = mix64(hash_str(self.seed, &query.prompt));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let corrected = if u < self.fix_rate {
            render_gold(gold)
        } else if parsed == ParsedAnswer::IDontKnow {
            // Instruction tuning always commits to a guess: replace the
            // abstention with the base model's "best guess" — the wrong
            // answer it would have given. (This is why LLMs4OL's miss
            // rates are all zero.)
            match gold {
                taxoglimpse_core::question::GoldAnswer::Yes => "No.".to_owned(),
                taxoglimpse_core::question::GoldAnswer::No => "Yes.".to_owned(),
                taxoglimpse_core::question::GoldAnswer::Option(j) => {
                    format!("{})", (b'A' + ((j + 1) % 4)) as char)
                }
                // When abstaining was right, the tuned model's forced
                // guess commits to the first shown option.
                taxoglimpse_core::question::GoldAnswer::Abstain => "A)".to_owned(),
            }
        } else {
            return base_answer;
        };
        Response::new(corrected)
    }
}

impl<M: LanguageModel> LanguageModel for InstructionTuned<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        Ok(self.tune(query, self.base.answer(query)?))
    }

    /// Batched answering: delegate the whole batch to the base model's
    /// batch path, then apply the (pure, per-query) tuning treatment to
    /// each successful delivery.
    fn answer_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Response, ModelError>> {
        let base_answers = self.base.answer_batch(queries);
        assert_eq!(
            base_answers.len(),
            queries.len(),
            "answer_batch must return exactly one result per query"
        );
        base_answers
            .into_iter()
            .zip(queries)
            .map(|(answer, query)| answer.map(|response| self.tune(query, response)))
            .collect()
    }

    fn reset(&self) {
        self.base.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelId;
    use crate::simulate::SimulatedLlm;
    use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
    use taxoglimpse_core::eval::Evaluator;
    use taxoglimpse_synth::{generate, GenOptions};

    fn glottolog_dataset() -> (taxoglimpse_taxonomy::Taxonomy, TaxonomyKind) {
        let t = generate(TaxonomyKind::Glottolog, GenOptions { seed: 9, scale: 0.05 }).unwrap();
        (t, TaxonomyKind::Glottolog)
    }

    #[test]
    fn tuning_improves_the_backbone() {
        let (t, k) = glottolog_dataset();
        let d = DatasetBuilder::new(&t, k, 9).sample_cap(Some(60)).build(QuestionDataset::Hard).unwrap();
        let base = SimulatedLlm::new(ModelId::FlanT5_3b);
        let base_report = Evaluator::default().run(&base, &d);
        let tuned = InstructionTuned::new(SimulatedLlm::new(ModelId::FlanT5_3b), 0.4, 1);
        let tuned_report = Evaluator::default().run(&tuned, &d);
        assert!(
            tuned_report.overall.accuracy() > base_report.overall.accuracy(),
            "tuned {} vs base {}",
            tuned_report.overall.accuracy(),
            base_report.overall.accuracy()
        );
        assert_eq!(tuned_report.overall.miss_rate(), 0.0);
    }

    #[test]
    fn tuning_eliminates_abstention() {
        let (t, k) = glottolog_dataset();
        let d = DatasetBuilder::new(&t, k, 10).sample_cap(Some(40)).build(QuestionDataset::Hard).unwrap();
        // Mistral abstains a lot on Glottolog (M = 0.818 in Table 5).
        let tuned = InstructionTuned::new(SimulatedLlm::new(ModelId::Mistral7b), 0.3, 2);
        let report = Evaluator::default().run(&tuned, &d);
        assert_eq!(report.overall.miss_rate(), 0.0);
    }

    #[test]
    fn domain_restriction_passes_other_taxonomies_through() {
        let (t, k) = glottolog_dataset();
        let d = DatasetBuilder::new(&t, k, 11).sample_cap(Some(40)).build(QuestionDataset::Hard).unwrap();
        let base_report = Evaluator::default().run(&SimulatedLlm::new(ModelId::FlanT5_3b), &d);
        // Tuned only on Shopping: Glottolog answers are untouched.
        let tuned = InstructionTuned::new(SimulatedLlm::new(ModelId::FlanT5_3b), 0.9, 3)
            .with_domains(vec![TaxonomyKind::Amazon]);
        let tuned_report = Evaluator::default().run(&tuned, &d);
        assert_eq!(tuned_report.overall, base_report.overall);
    }

    #[test]
    fn fix_rate_one_is_perfect_on_covered_domains() {
        let (t, k) = glottolog_dataset();
        let d = DatasetBuilder::new(&t, k, 12).sample_cap(Some(30)).build(QuestionDataset::Mcq).unwrap();
        let tuned = InstructionTuned::new(SimulatedLlm::new(ModelId::Llama2_7b), 1.0, 4);
        let report = Evaluator::default().run(&tuned, &d);
        assert_eq!(report.overall.accuracy(), 1.0);
    }

    #[test]
    fn name_reflects_tuning() {
        let tuned = InstructionTuned::new(SimulatedLlm::new(ModelId::FlanT5_3b), 0.5, 5);
        assert_eq!(tuned.name(), "Flan-T5-3B+it");
        assert_eq!(tuned.base().id(), ModelId::FlanT5_3b);
    }
}
