//! Free-text response synthesis.
//!
//! The harness parses model output like it would a real API response, so
//! simulated models answer in family-specific natural-language phrasing
//! — terse for Flan-T5, chatty for Llama-chat, polite hedging for the
//! assistants — with deterministic variation. The CoT setting prepends a
//! short "reasoning" passage before the verdict, as real models do.

use crate::profile::{ModelFamily, ModelId};
use taxoglimpse_core::prompts::PromptSetting;
use taxoglimpse_core::question::Question;
use taxoglimpse_synth::rng::mix64;

/// What the model decided to say, before phrasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Affirmative TF answer.
    Yes,
    /// Negative TF answer.
    No,
    /// Abstention.
    IDontKnow,
    /// MCQ option index.
    Option(u8),
}

/// Render `verdict` as natural language in the voice of `model`.
pub fn render(
    model: ModelId,
    question: &Question,
    verdict: Verdict,
    setting: PromptSetting,
    noise: u64,
) -> String {
    // Pick the phrasing-variant index first, then construct only the
    // picked variant — building every variant just to clone one was
    // pure allocation waste on the hot path.
    let pick = |n: usize, salt: u64| (mix64(noise ^ salt) % n as u64) as usize;
    let core = match verdict {
        Verdict::Yes => match model.family() {
            ModelFamily::FlanT5 | ModelFamily::Llms4Ol => "yes".to_owned(),
            ModelFamily::Gpt | ModelFamily::Claude => match pick(3, 1) {
                0 => format!("Yes, {} is a type of {}.", question.child, question.shown_candidate()),
                1 => format!("Yes — {} falls under {}.", question.child, question.shown_candidate()),
                _ => "Yes.".to_owned(),
            },
            _ => match pick(3, 2) {
                0 => "Yes.".to_owned(),
                1 => "Sure! The answer is: Yes".to_owned(),
                _ => format!("Yes, that's correct — {} belongs there.", question.child),
            },
        },
        Verdict::No => match model.family() {
            ModelFamily::FlanT5 | ModelFamily::Llms4Ol => "no".to_owned(),
            ModelFamily::Gpt | ModelFamily::Claude => match pick(3, 3) {
                0 => format!("No, {} is not a type of {}.", question.child, question.shown_candidate()),
                1 => "No.".to_owned(),
                _ => format!("No — {} belongs to a different category.", question.child),
            },
            _ => match pick(2, 4) {
                0 => "No.".to_owned(),
                _ => "No, that is not correct.".to_owned(),
            },
        },
        Verdict::IDontKnow => match pick(3, 5) {
            0 => "I don't know.".to_owned(),
            1 => "I don't know the answer to that.".to_owned(),
            _ => format!("I'm not sure about {}, so I don't know.", question.child),
        },
        Verdict::Option(i) => {
            let letter = (b'A' + i) as char;
            match model.family() {
                ModelFamily::FlanT5 | ModelFamily::Llms4Ol => format!("{letter})"),
                ModelFamily::Gpt | ModelFamily::Claude => match pick(3, 6) {
                    0 => format!("The answer is {letter}."),
                    1 => format!("{letter})"),
                    _ => format!("The most appropriate supertype is {letter})."),
                },
                _ => match pick(2, 7) {
                    0 => format!("{letter})"),
                    _ => format!("I would choose {letter}."),
                },
            }
        }
    };

    if setting == PromptSetting::ChainOfThought && !matches!(model.family(), ModelFamily::FlanT5 | ModelFamily::Llms4Ol) {
        format!(
            "Let's think step by step. {} is an entity at a certain level of this hierarchy; \
             comparing it with the proposed supertype and its typical members, we can decide. {core}",
            question.child
        )
    } else {
        core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxoglimpse_core::domain::TaxonomyKind;
    use taxoglimpse_core::parse::{parse_mcq, parse_tf, ParsedAnswer};
    use taxoglimpse_core::question::QuestionBody;

    fn q() -> Question {
        Question {
            id: 0,
            taxonomy: TaxonomyKind::Ncbi,
            child: "Verbascum chaixii".into(),
            child_level: 6,
            parent_level: 5,
            true_parent: "Verbascum".into(),
            instance_typing: false,
            body: QuestionBody::TrueFalse {
                candidate: "Verbascum".into(),
                expected_yes: true,
                negative: None,
            },
        }
    }

    fn mcq() -> Question {
        Question {
            body: QuestionBody::Mcq {
                options: ["w".into(), "Verbascum".into(), "x".into(), "y".into()],
                correct: 1,
            },
            ..q()
        }
    }

    /// Whatever a model says, the harness must parse it back to the
    /// intended verdict — over all models, verdicts and noise values.
    #[test]
    fn every_rendering_parses_back() {
        for model in ModelId::ALL {
            for noise in 0..24u64 {
                for setting in [PromptSetting::ZeroShot, PromptSetting::ChainOfThought] {
                    for (verdict, expect) in [
                        (Verdict::Yes, ParsedAnswer::Yes),
                        (Verdict::No, ParsedAnswer::No),
                        (Verdict::IDontKnow, ParsedAnswer::IDontKnow),
                    ] {
                        let text = render(model, &q(), verdict, setting, noise);
                        assert_eq!(parse_tf(&text), expect, "{model} {setting} {noise}: {text:?}");
                    }
                    for i in 0..4u8 {
                        let text = render(model, &mcq(), Verdict::Option(i), setting, noise);
                        assert_eq!(
                            parse_mcq(&text),
                            ParsedAnswer::Option(i),
                            "{model} {setting} {noise}: {text:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render(ModelId::Gpt4, &q(), Verdict::Yes, PromptSetting::ZeroShot, 7);
        let b = render(ModelId::Gpt4, &q(), Verdict::Yes, PromptSetting::ZeroShot, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn cot_adds_reasoning_for_chat_models() {
        let cot = render(ModelId::Gpt4, &q(), Verdict::Yes, PromptSetting::ChainOfThought, 1);
        assert!(cot.contains("step by step"));
        let flan = render(ModelId::FlanT5_3b, &q(), Verdict::Yes, PromptSetting::ChainOfThought, 1);
        assert_eq!(flan, "yes");
    }

    #[test]
    fn flan_is_terse() {
        assert_eq!(render(ModelId::FlanT5_11b, &q(), Verdict::No, PromptSetting::ZeroShot, 0), "no");
        assert_eq!(
            render(ModelId::Llms4Ol, &mcq(), Verdict::Option(2), PromptSetting::ZeroShot, 0),
            "C)"
        );
    }
}
