//! A small subword tokenizer used for usage accounting and the
//! scalability model's latency estimates.
//!
//! This is not a trained BPE; it approximates modern LLM tokenizers'
//! behaviour (≈ 4 characters per token for English, punctuation split
//! off, long words split into chunks) well enough to drive token-count
//! dependent cost models.

/// Greedy whitespace + punctuation + chunk tokenizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tokenizer {
    _private: (),
}

/// Maximum characters a single token may span before being chunked.
const MAX_TOKEN_CHARS: usize = 6;

impl Tokenizer {
    /// Tokenize into borrowed slices.
    pub fn tokenize<'a>(&self, text: &'a str) -> Vec<&'a str> {
        let mut tokens = Vec::with_capacity(text.len() / 4 + 1);
        for word in text.split_whitespace() {
            // Split off punctuation runs, then chunk long alphanumerics.
            let mut rest = word;
            while !rest.is_empty() {
                let is_alnum = rest
                    .chars()
                    .next()
                    .map(|c| c.is_alphanumeric())
                    .unwrap_or(false);
                let run_end = rest
                    .char_indices()
                    .find(|(_, c)| c.is_alphanumeric() != is_alnum)
                    .map(|(i, _)| i)
                    .unwrap_or(rest.len());
                let (run, tail) = rest.split_at(run_end);
                let mut chunk = run;
                while chunk.chars().count() > MAX_TOKEN_CHARS {
                    let split = chunk
                        .char_indices()
                        .nth(MAX_TOKEN_CHARS)
                        .map(|(i, _)| i)
                        .unwrap_or(chunk.len());
                    let (head, t) = chunk.split_at(split);
                    tokens.push(head);
                    chunk = t;
                }
                if !chunk.is_empty() {
                    tokens.push(chunk);
                }
                rest = tail;
            }
        }
        tokens
    }

    /// Token count of `text` — same value as `tokenize(text).len()`,
    /// computed without materialising the token vector (this runs twice
    /// per query for usage accounting, and the prompt pass dominated
    /// the few-shot hot path before the byte-level fast path).
    pub fn count(&self, text: &str) -> usize {
        if text.is_ascii() {
            return count_ascii(text.as_bytes());
        }
        let mut tokens = 0;
        for word in text.split_whitespace() {
            let mut rest = word;
            while !rest.is_empty() {
                let is_alnum = rest
                    .chars()
                    .next()
                    .map(|c| c.is_alphanumeric())
                    .unwrap_or(false);
                let run_end = rest
                    .char_indices()
                    .find(|(_, c)| c.is_alphanumeric() != is_alnum)
                    .map(|(i, _)| i)
                    .unwrap_or(rest.len());
                let (run, tail) = rest.split_at(run_end);
                // A run of k chars splits into ceil(k / MAX_TOKEN_CHARS)
                // chunks — exactly what the chunking loop above emits.
                tokens += run.chars().count().div_ceil(MAX_TOKEN_CHARS);
                rest = tail;
            }
        }
        tokens
    }
}

/// Byte-level counting for ASCII text (the overwhelmingly common case),
/// avoiding UTF-8 decoding entirely. Exactly equivalent to the generic
/// path: for ASCII, `char::is_alphanumeric` is `[0-9A-Za-z]` and
/// `char::is_whitespace` is `\t \n \x0b \x0c \r` and space (note `\x0b`
/// *is* Unicode whitespace but not `u8::is_ascii_whitespace`).
fn count_ascii(bytes: &[u8]) -> usize {
    // Byte classes: 0 = whitespace, 1 = alphanumeric, 2 = other.
    const WS: u8 = 0;
    const AL: u8 = 1;
    const OT: u8 = 2;
    const CLASS: [u8; 256] = {
        let mut t = [OT; 256];
        let mut b = 0usize;
        while b < 256 {
            let c = b as u8;
            if matches!(c, b'\t' | b'\n' | b'\x0b' | b'\x0c' | b'\r' | b' ') {
                t[b] = WS;
            } else if c.is_ascii_alphanumeric() {
                t[b] = AL;
            }
            b += 1;
        }
        t
    };
    let mut tokens = 0usize;
    let mut run_len = 0usize;
    let mut run_class = WS;
    for &b in bytes {
        let class = CLASS[b as usize];
        if class != run_class {
            if run_class != WS {
                tokens += run_len.div_ceil(MAX_TOKEN_CHARS);
            }
            run_class = class;
            run_len = 0;
        }
        run_len += 1;
    }
    if run_class != WS {
        tokens += run_len.div_ceil(MAX_TOKEN_CHARS);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sentences() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("Is Hailu a type of"), vec!["Is", "Hailu", "a", "type", "of"]);
        assert_eq!(t.count(""), 0);
        assert_eq!(t.count("   "), 0);
    }

    #[test]
    fn punctuation_splits_off() {
        let t = Tokenizer::default();
        let toks = t.tokenize("know)? answer!");
        assert!(toks.contains(&"know"));
        assert!(toks.contains(&")?"));
        assert!(toks.contains(&"answer"));
        assert!(toks.contains(&"!"));
    }

    #[test]
    fn long_words_are_chunked() {
        let t = Tokenizer::default();
        let toks = t.tokenize("Scrophulariaceae");
        assert!(toks.len() >= 2, "{toks:?}");
        assert_eq!(toks.concat(), "Scrophulariaceae");
        for tok in toks {
            assert!(tok.chars().count() <= MAX_TOKEN_CHARS);
        }
    }

    #[test]
    fn density_is_plausible() {
        let t = Tokenizer::default();
        let text = "Is Verbascum chaixii a type of Verbascum? answer with (Yes/No/I don't know)";
        let n = t.count(text);
        // Roughly text_len / 4 ± generous slack.
        assert!((10..=35).contains(&n), "{n} tokens");
    }

    #[test]
    fn unicode_does_not_panic() {
        let t = Tokenizer::default();
        let n = t.count("naïve café Sinō-Tibetan 語言");
        assert!(n >= 4);
    }

    #[test]
    fn count_equals_tokenize_len() {
        let t = Tokenizer::default();
        let samples = [
            "",
            "   ",
            "Is Hailu a type of Hakka-Chinese? (Yes/No/I don't know)",
            "know)? answer!",
            "Scrophulariaceae",
            "Example: Is Verbascum chaixii a type of Verbascum? Yes.",
            "naïve café Sinō-Tibetan 語言",
            "a)b)c)d) x--y--z ...",
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789",
            "vertical\x0btab and\u{00a0}nbsp",
            "mixed ascii then naïve tail",
        ];
        for text in samples {
            assert_eq!(t.count(text), t.tokenize(text).len(), "{text:?}");
        }
    }
}
