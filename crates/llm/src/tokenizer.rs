//! A small subword tokenizer used for usage accounting and the
//! scalability model's latency estimates.
//!
//! This is not a trained BPE; it approximates modern LLM tokenizers'
//! behaviour (≈ 4 characters per token for English, punctuation split
//! off, long words split into chunks) well enough to drive token-count
//! dependent cost models.

/// Greedy whitespace + punctuation + chunk tokenizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tokenizer {
    _private: (),
}

/// Maximum characters a single token may span before being chunked.
const MAX_TOKEN_CHARS: usize = 6;

impl Tokenizer {
    /// Tokenize into borrowed slices.
    pub fn tokenize<'a>(&self, text: &'a str) -> Vec<&'a str> {
        let mut tokens = Vec::with_capacity(text.len() / 4 + 1);
        for word in text.split_whitespace() {
            // Split off punctuation runs, then chunk long alphanumerics.
            let mut rest = word;
            while !rest.is_empty() {
                let is_alnum = rest
                    .chars()
                    .next()
                    .map(|c| c.is_alphanumeric())
                    .unwrap_or(false);
                let run_end = rest
                    .char_indices()
                    .find(|(_, c)| c.is_alphanumeric() != is_alnum)
                    .map(|(i, _)| i)
                    .unwrap_or(rest.len());
                let (run, tail) = rest.split_at(run_end);
                let mut chunk = run;
                while chunk.chars().count() > MAX_TOKEN_CHARS {
                    let split = chunk
                        .char_indices()
                        .nth(MAX_TOKEN_CHARS)
                        .map(|(i, _)| i)
                        .unwrap_or(chunk.len());
                    let (head, t) = chunk.split_at(split);
                    tokens.push(head);
                    chunk = t;
                }
                if !chunk.is_empty() {
                    tokens.push(chunk);
                }
                rest = tail;
            }
        }
        tokens
    }

    /// Token count of `text`.
    pub fn count(&self, text: &str) -> usize {
        self.tokenize(text).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sentences() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("Is Hailu a type of"), vec!["Is", "Hailu", "a", "type", "of"]);
        assert_eq!(t.count(""), 0);
        assert_eq!(t.count("   "), 0);
    }

    #[test]
    fn punctuation_splits_off() {
        let t = Tokenizer::default();
        let toks = t.tokenize("know)? answer!");
        assert!(toks.contains(&"know"));
        assert!(toks.contains(&")?"));
        assert!(toks.contains(&"answer"));
        assert!(toks.contains(&"!"));
    }

    #[test]
    fn long_words_are_chunked() {
        let t = Tokenizer::default();
        let toks = t.tokenize("Scrophulariaceae");
        assert!(toks.len() >= 2, "{toks:?}");
        assert_eq!(toks.concat(), "Scrophulariaceae");
        for tok in toks {
            assert!(tok.chars().count() <= MAX_TOKEN_CHARS);
        }
    }

    #[test]
    fn density_is_plausible() {
        let t = Tokenizer::default();
        let text = "Is Verbascum chaixii a type of Verbascum? answer with (Yes/No/I don't know)";
        let n = t.count(text);
        // Roughly text_len / 4 ± generous slack.
        assert!((10..=35).contains(&n), "{n} tokens");
    }

    #[test]
    fn unicode_does_not_panic() {
        let t = Tokenizer::default();
        let n = t.count("naïve café Sinō-Tibetan 語言");
        assert!(n >= 4);
    }
}
