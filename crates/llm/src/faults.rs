//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultInjector`] wraps any [`LanguageModel`] and converts a
//! configurable fraction of its deliveries into each [`ModelError`]
//! class. Every decision is a pure function of
//! `(plan seed, model name, taxonomy, question id, attempt)` via the
//! same fork discipline the synthesizer uses — no wall clock, no
//! global state — so an injected fault stream is reproducible
//! byte-for-byte regardless of thread count or call order, and a
//! retried delivery (`query.attempt` bumped) re-rolls rather than
//! replays its faults.
//!
//! This purity is also what makes sharded runs (`core::shard`) honest:
//! two injector *instances* built from the same plan — one per shard,
//! each with its own stats mutex — produce identical fault streams for
//! the same queries, so splitting a benchmark across shards can never
//! change which deliveries fail, only which worker observes them.

use std::collections::BTreeMap;
use std::sync::Mutex;
use taxoglimpse_core::domain::TaxonomyKind;
use taxoglimpse_core::model::{LanguageModel, ModelError, Query, Response};
use taxoglimpse_synth::rng::{mix64, StreamHasher};

/// Which error class an injected fault takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultClass {
    Timeout,
    RateLimited,
    Truncated,
    Unavailable,
    Malformed,
}

/// Per-(model, taxonomy) fault-rate configuration.
///
/// Rates are probabilities per *delivery* (one `answer` call); each
/// class draws from the same uniform variate, so the per-class rates
/// add up and their sum is the overall injection rate. Per-taxonomy
/// and per-model multipliers scale all classes at once, modelling the
/// observation that some domains (long ICD-10 prompts, say) or some
/// serving stacks fail more than others.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    timeout: f64,
    rate_limited: f64,
    truncated: f64,
    unavailable: f64,
    malformed: f64,
    retry_after_s: f64,
    taxonomy_factor: [f64; TaxonomyKind::ALL.len()],
    model_factor: BTreeMap<String, f64>,
}

impl FaultPlan {
    /// A plan with all rates zero — injects nothing.
    pub fn disabled(seed: u64) -> Self {
        FaultPlan {
            seed,
            timeout: 0.0,
            rate_limited: 0.0,
            truncated: 0.0,
            unavailable: 0.0,
            malformed: 0.0,
            retry_after_s: 1.0,
            taxonomy_factor: [1.0; TaxonomyKind::ALL.len()],
            model_factor: BTreeMap::new(),
        }
    }

    /// A plan injecting `rate` of all deliveries, split evenly across
    /// the five error classes.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let per_class = rate.clamp(0.0, 1.0) / 5.0;
        FaultPlan {
            timeout: per_class,
            rate_limited: per_class,
            truncated: per_class,
            unavailable: per_class,
            malformed: per_class,
            ..Self::disabled(seed)
        }
    }

    /// Set the timeout rate.
    pub fn with_timeout_rate(mut self, rate: f64) -> Self {
        self.timeout = rate.clamp(0.0, 1.0);
        self
    }

    /// Set the rate-limit rate.
    pub fn with_rate_limit_rate(mut self, rate: f64) -> Self {
        self.rate_limited = rate.clamp(0.0, 1.0);
        self
    }

    /// Set the truncation rate.
    pub fn with_truncated_rate(mut self, rate: f64) -> Self {
        self.truncated = rate.clamp(0.0, 1.0);
        self
    }

    /// Set the unavailable rate.
    pub fn with_unavailable_rate(mut self, rate: f64) -> Self {
        self.unavailable = rate.clamp(0.0, 1.0);
        self
    }

    /// Set the malformed-response rate (the one non-retryable class).
    pub fn with_malformed_rate(mut self, rate: f64) -> Self {
        self.malformed = rate.clamp(0.0, 1.0);
        self
    }

    /// Seconds the injected `RateLimited` error asks callers to wait.
    pub fn with_retry_after_s(mut self, seconds: f64) -> Self {
        self.retry_after_s = seconds.max(0.0);
        self
    }

    /// Scale all rates for one taxonomy (default factor 1.0).
    pub fn with_taxonomy_factor(mut self, kind: TaxonomyKind, factor: f64) -> Self {
        self.taxonomy_factor[kind_index(kind)] = factor.max(0.0);
        self
    }

    /// Scale all rates for one model, by its `name()` (default 1.0).
    pub fn with_model_factor(mut self, model: &str, factor: f64) -> Self {
        self.model_factor.insert(model.to_owned(), factor.max(0.0));
        self
    }

    /// True when no class can ever fire.
    pub fn is_disabled(&self) -> bool {
        self.timeout == 0.0
            && self.rate_limited == 0.0
            && self.truncated == 0.0
            && self.unavailable == 0.0
            && self.malformed == 0.0
    }

    /// The seed the per-delivery fault streams fork from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decide the fault (if any) for one delivery. Pure: the same
    /// `(model, taxonomy, question id, attempt)` always draws the same
    /// answer, and the draw never consults worker identity.
    fn decide(&self, model: &str, query: &Query<'_>) -> Option<FaultClass> {
        if self.is_disabled() {
            return None;
        }
        let factor = self.taxonomy_factor[kind_index(query.question.taxonomy)]
            * self.model_factor.get(model).copied().unwrap_or(1.0);
        if factor == 0.0 {
            return None;
        }
        let mut h = StreamHasher::new(self.seed ^ 0xFA_17B0A7);
        h.write_str(model);
        h.write_str("|");
        h.write_str(query.question.taxonomy.label());
        h.write_str("|");
        h.write_decimal(query.question.id);
        h.write_str("|");
        h.write_decimal(u64::from(query.attempt));
        let u = (mix64(h.finish()) >> 11) as f64 / (1u64 << 53) as f64;
        let mut edge = 0.0;
        for (rate, class) in [
            (self.timeout, FaultClass::Timeout),
            (self.rate_limited, FaultClass::RateLimited),
            (self.truncated, FaultClass::Truncated),
            (self.unavailable, FaultClass::Unavailable),
            (self.malformed, FaultClass::Malformed),
        ] {
            edge += rate * factor;
            if u < edge {
                return Some(class);
            }
        }
        None
    }
}

fn kind_index(kind: TaxonomyKind) -> usize {
    TaxonomyKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("every TaxonomyKind appears in TaxonomyKind::ALL")
}

/// Injection counters accumulated by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Deliveries seen.
    pub calls: u64,
    /// Deliveries converted into an error.
    pub injected: u64,
    /// Timeouts injected.
    pub timeouts: u64,
    /// Rate-limit errors injected.
    pub rate_limited: u64,
    /// Truncations injected.
    pub truncated: u64,
    /// Unavailable errors injected.
    pub unavailable: u64,
    /// Malformed responses injected.
    pub malformed: u64,
}

/// A [`LanguageModel`] wrapper that injects [`FaultPlan`] faults.
///
/// Transparent when the plan is disabled: same `name()`, same
/// responses, byte-identical reports.
pub struct FaultInjector<M> {
    base: M,
    plan: FaultPlan,
    stats: Mutex<FaultStats>,
}

impl<M: LanguageModel> FaultInjector<M> {
    /// Wrap `base` under `plan`.
    pub fn new(base: M, plan: FaultPlan) -> Self {
        FaultInjector { base, plan, stats: Mutex::new(FaultStats::default()) }
    }

    /// The wrapped model.
    pub fn base(&self) -> &M {
        &self.base
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters since the last reset.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock().expect("fault stats lock not poisoned")
    }
}

impl FaultStats {
    /// Record one decided delivery.
    fn record(&mut self, class: Option<FaultClass>) {
        self.calls += 1;
        if class.is_some() {
            self.injected += 1;
        }
        match class {
            Some(FaultClass::Timeout) => self.timeouts += 1,
            Some(FaultClass::RateLimited) => self.rate_limited += 1,
            Some(FaultClass::Truncated) => self.truncated += 1,
            Some(FaultClass::Unavailable) => self.unavailable += 1,
            Some(FaultClass::Malformed) => self.malformed += 1,
            None => {}
        }
    }
}

/// A truncation happens *after* the model spoke: deliver a prefix of
/// the real response as the partial payload.
fn truncate_answer(full: Response) -> ModelError {
    let mut cut = full.text.len() / 2;
    while cut > 0 && !full.text.is_char_boundary(cut) {
        cut -= 1;
    }
    let mut partial = full.text;
    partial.truncate(cut);
    ModelError::Truncated { partial }
}

impl<M: LanguageModel> LanguageModel for FaultInjector<M> {
    fn name(&self) -> &str {
        self.base.name()
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        let class = self.plan.decide(self.base.name(), query);
        self.stats.lock().expect("fault stats lock not poisoned").record(class);
        match class {
            None => self.base.answer(query),
            Some(FaultClass::Timeout) => Err(ModelError::Timeout),
            Some(FaultClass::RateLimited) => {
                Err(ModelError::RateLimited { retry_after_s: self.plan.retry_after_s })
            }
            Some(FaultClass::Truncated) => Err(truncate_answer(self.base.answer(query)?)),
            Some(FaultClass::Unavailable) => Err(ModelError::Unavailable),
            Some(FaultClass::Malformed) => Err(ModelError::Malformed),
        }
    }

    /// Batched injection: per-delivery fates are decided exactly as in
    /// [`Self::answer`] (they are pure per-query functions), stats are
    /// merged under a single lock, and only the deliveries that need a
    /// real answer (fault-free and truncated ones) are forwarded — as
    /// one sub-batch — to the base model's batch path.
    fn answer_batch(&self, queries: &[Query<'_>]) -> Vec<Result<Response, ModelError>> {
        let name = self.base.name();
        let classes: Vec<Option<FaultClass>> =
            queries.iter().map(|query| self.plan.decide(name, query)).collect();
        {
            let mut stats = self.stats.lock().expect("fault stats lock not poisoned");
            for class in &classes {
                stats.record(*class);
            }
        }
        let base_queries: Vec<Query<'_>> = classes
            .iter()
            .zip(queries)
            .filter(|(class, _)| matches!(class, None | Some(FaultClass::Truncated)))
            .map(|(_, query)| *query)
            .collect();
        let base_answers = self.base.answer_batch(&base_queries);
        assert_eq!(
            base_answers.len(),
            base_queries.len(),
            "answer_batch must return exactly one result per query"
        );
        let mut base_answers = base_answers.into_iter();
        classes
            .iter()
            .map(|class| match class {
                None => base_answers
                    .next()
                    .expect("base sub-batch covers every fault-free delivery"),
                Some(FaultClass::Timeout) => Err(ModelError::Timeout),
                Some(FaultClass::RateLimited) => {
                    Err(ModelError::RateLimited { retry_after_s: self.plan.retry_after_s })
                }
                Some(FaultClass::Truncated) => {
                    let full = base_answers
                        .next()
                        .expect("base sub-batch covers every truncated delivery");
                    match full {
                        Ok(response) => Err(truncate_answer(response)),
                        Err(error) => Err(error),
                    }
                }
                Some(FaultClass::Unavailable) => Err(ModelError::Unavailable),
                Some(FaultClass::Malformed) => Err(ModelError::Malformed),
            })
            .collect()
    }

    fn reset(&self) {
        self.base.reset();
        *self.stats.lock().expect("fault stats lock not poisoned") = FaultStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelId;
    use crate::simulate::SimulatedLlm;
    use taxoglimpse_core::dataset::{DatasetBuilder, QuestionDataset};
    use taxoglimpse_core::eval::Evaluator;
    use taxoglimpse_synth::{generate, GenOptions};

    fn dataset() -> taxoglimpse_core::dataset::Dataset {
        let t = generate(TaxonomyKind::Ebay, GenOptions { seed: 50, scale: 1.0 })
            .expect("valid options");
        DatasetBuilder::new(&t, TaxonomyKind::Ebay, 50)
            .sample_cap(Some(80))
            .build(QuestionDataset::Hard)
            .expect("ebay has probe levels")
    }

    #[test]
    fn disabled_plan_is_transparent() {
        let d = dataset();
        let bare = SimulatedLlm::new(ModelId::Gpt4);
        let wrapped = FaultInjector::new(SimulatedLlm::new(ModelId::Gpt4), FaultPlan::disabled(1));
        assert_eq!(wrapped.name(), bare.name());
        let a = Evaluator::default().run(&bare, &d);
        let b = Evaluator::default().run(&wrapped, &d);
        assert_eq!(a.overall, b.overall);
        assert_eq!(a.by_level, b.by_level);
        let stats = wrapped.stats();
        assert_eq!(stats.injected, 0);
        assert!(stats.calls as usize >= d.len());
    }

    #[test]
    fn uniform_plan_injects_every_class() {
        let d = dataset();
        let wrapped =
            FaultInjector::new(SimulatedLlm::new(ModelId::Gpt35), FaultPlan::uniform(7, 0.9));
        Evaluator::default().run(&wrapped, &d);
        let stats = wrapped.stats();
        assert!(stats.injected > 0);
        for (label, count) in [
            ("timeouts", stats.timeouts),
            ("rate_limited", stats.rate_limited),
            ("truncated", stats.truncated),
            ("unavailable", stats.unavailable),
            ("malformed", stats.malformed),
        ] {
            assert!(count > 0, "class {label} never fired at 90% injection");
        }
        assert_eq!(
            stats.injected,
            stats.timeouts + stats.rate_limited + stats.truncated + stats.unavailable
                + stats.malformed
        );
    }

    #[test]
    fn injection_is_deterministic() {
        let d = dataset();
        let run = || {
            let m =
                FaultInjector::new(SimulatedLlm::new(ModelId::Gpt35), FaultPlan::uniform(9, 0.2));
            let report = Evaluator::default().run(&m, &d);
            (m.stats(), report.overall)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn retried_deliveries_reroll_their_faults() {
        let d = dataset();
        let plan = FaultPlan::uniform(11, 0.5).with_malformed_rate(0.0);
        let injector = FaultInjector::new(SimulatedLlm::new(ModelId::Gpt4), plan);
        let report = Evaluator::default().run(&injector, &d);
        let stats = injector.stats();
        // Retries re-roll: deliveries exceed questions, and most
        // questions recover (availability well above the 60% a
        // replaying injector would pin them at).
        assert!(stats.calls as usize > d.len());
        assert!(report.overall.availability() > 0.75, "{}", report.overall.availability());
        assert!(report.overall.failed > 0, "50% injection with 3 attempts still exhausts some");
    }

    /// The shard-identity property `core::shard` relies on: two
    /// injector *instances* built from the same plan (one per shard)
    /// produce identical result streams for the same queries — fault
    /// decisions live in the plan's pure hash, not in instance state.
    #[test]
    fn separate_injector_instances_share_one_fault_stream() {
        let d = dataset();
        let make = || {
            FaultInjector::new(SimulatedLlm::new(ModelId::Gpt35), FaultPlan::uniform(19, 0.4))
        };
        let shard_a = make();
        let shard_b = make();
        let setting = taxoglimpse_core::prompts::PromptSetting::ZeroShot;
        for (i, q) in d.questions().take(60).enumerate() {
            let prompt = taxoglimpse_core::prompts::render_prompt(
                q,
                setting,
                taxoglimpse_core::templates::TemplateVariant::default(),
                &[],
            );
            // Interleave attempts so the two instances see different
            // call *orders* — the streams must still agree per query.
            let query = Query::new(&prompt, q, setting).with_attempt((i % 3) as u32);
            assert_eq!(shard_a.answer(&query), shard_b.answer(&query));
        }
        assert_eq!(shard_a.stats(), shard_b.stats());
    }

    #[test]
    fn factors_scale_rates() {
        let d = dataset();
        let zeroed = FaultPlan::uniform(13, 0.6).with_taxonomy_factor(TaxonomyKind::Ebay, 0.0);
        let m = FaultInjector::new(SimulatedLlm::new(ModelId::Gpt4), zeroed);
        Evaluator::default().run(&m, &d);
        assert_eq!(m.stats().injected, 0, "factor 0 silences the injector");

        let model_zeroed = FaultPlan::uniform(13, 0.6).with_model_factor("GPT-4", 0.0);
        let m2 = FaultInjector::new(SimulatedLlm::new(ModelId::Gpt4), model_zeroed);
        Evaluator::default().run(&m2, &d);
        assert_eq!(m2.stats().injected, 0);
    }

    #[test]
    fn truncation_carries_a_prefix_of_the_real_answer() {
        let d = dataset();
        let plan = FaultPlan::disabled(17).with_truncated_rate(1.0);
        let injector = FaultInjector::new(SimulatedLlm::new(ModelId::Gpt4), plan);
        let bare = SimulatedLlm::new(ModelId::Gpt4);
        let q = d.questions().next().expect("dataset is non-empty");
        let setting = taxoglimpse_core::prompts::PromptSetting::ZeroShot;
        let prompt = taxoglimpse_core::prompts::render_prompt(
            q,
            setting,
            taxoglimpse_core::templates::TemplateVariant::default(),
            &[],
        );
        let query = Query::new(&prompt, q, setting);
        let full = bare.answer(&query).expect("simulated model never fails");
        match injector.answer(&query) {
            Err(ModelError::Truncated { partial }) => {
                assert!(full.text.starts_with(&partial));
                assert!(partial.len() < full.text.len());
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }
}
