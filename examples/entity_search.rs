//! The paper's motivating application (§1): entity search — "best
//! health tracker" as a shopping query — over a hybrid taxonomy.
//!
//! Pipeline: the free-text query routes to a kept category of the
//! truncated Google-shaped taxonomy (lexical shortlist + LLM
//! confirmation), the category's breadcrumb renders from the explicit
//! tree, and the inventory is filtered to products the model accepts as
//! members. Tree reasoning (`most_specific_subsumer`) picks the deepest
//! category when several match.
//!
//! ```text
//! cargo run --release --example entity_search [-- "smart watch"]
//! ```

use taxoglimpse::core::hybrid::HybridTaxonomy;
use taxoglimpse::core::parse::{parse_tf, ParsedAnswer};
use taxoglimpse::core::question::{Question, QuestionBody};
use taxoglimpse::core::templates::render_question;
use taxoglimpse::prelude::*;
use taxoglimpse::synth::instances::InstanceGenerator;
use taxoglimpse::taxonomy::diff::path_of;

fn main() {
    let query = std::env::args().nth(1).unwrap_or_else(|| "portable speaker".to_owned());

    // Catalog: a Google-shaped product taxonomy with products under its
    // leaves, deep levels delegated to GPT-4.
    let kind = TaxonomyKind::Google;
    let full = generate(kind, GenOptions { seed: 42, scale: 0.3 }).expect("valid options");
    let hybrid = HybridTaxonomy::build(&full, kind, 3);
    let zoo = ModelZoo::default_zoo();
    let model = zoo.get(ModelId::Gpt4).expect("zoo covers all models");

    println!(
        "catalog: {} categories ({} kept explicit, {:.0}% delegated to {})",
        full.len(),
        hybrid.explicit().len(),
        hybrid.cost_saving() * 100.0,
        model.name()
    );

    // 1. Route the query to a kept category.
    let Some(category) = hybrid.route(&query, model.as_ref()) else {
        println!("no category found for {query:?}");
        return;
    };
    let kept = hybrid.explicit();
    println!(
        "\nquery {query:?} routed to: {}\nbreadcrumb: {}",
        kept.name(category),
        path_of(kept, category)
    );

    // 2. Gather candidate products: instances under the corresponding
    //    region of the *full* taxonomy (the shop's inventory).
    let full_index = full.name_index();
    let full_node = full_index
        .lookup(kept.name(category))
        .into_iter()
        .next()
        .expect("kept categories exist in the full taxonomy");
    let leaves = full.leaves_under(full_node);
    let instgen = InstanceGenerator::new(kind, 42).expect("google has instances");
    let inventory = instgen.instances_for(&full, &leaves[..leaves.len().min(8)], 4);
    println!("\ninventory under that category: {} products; asking {} which match…", inventory.len(), model.name());

    // 3. LLM-filter the inventory against the query concept.
    let mut hits = Vec::new();
    for item in &inventory {
        let question = Question {
            id: 0,
            taxonomy: kind,
            child: item.name.clone(),
            child_level: full.num_levels(),
            parent_level: full.num_levels() - 1,
            true_parent: query.clone(),
            instance_typing: true,
            body: QuestionBody::TrueFalse {
                candidate: query.clone(),
                expected_yes: true,
                negative: None,
            },
        };
        let prompt = render_question(&question, Default::default());
        let q = Query::new(&prompt, &question, PromptSetting::ZeroShot);
        // A delivery failure simply leaves the product out of the hits —
        // graceful degradation, not a crash.
        if model.answer(&q).is_ok_and(|r| parse_tf(&r.text) == ParsedAnswer::Yes) {
            hits.push(item);
        }
    }

    println!("\ntop results for {query:?}:");
    for item in hits.iter().take(8) {
        println!("  • {}   [{}]", item.name, path_of(&full, item.leaf));
    }
    if hits.is_empty() {
        println!("  (no confident matches — the model declined everything)");
    }
}
