//! The paper's §5.3 vision as a runnable scenario: a shop keeps the top
//! of its product taxonomy for navigation and replaces the deep levels
//! with an LLM.
//!
//! We build the Amazon-shaped taxonomy, truncate it below level 3, and
//! route "category search" queries through the hybrid stack: the kept
//! ancestor narrows the candidate pool, then the LLM filters products.
//! The example reports the construction-cost saving and the retrieval
//! precision/recall per model, so you can pick a model that meets your
//! quality bar.
//!
//! ```text
//! cargo run --release --example shopping_hybrid
//! ```

use taxoglimpse::core::casestudy::{CaseStudy, CaseStudyConfig};
use taxoglimpse::prelude::*;

fn main() {
    // A 10%-scale Amazon keeps the run snappy; pass scale 1.0 for the
    // full 43,814-entity taxonomy.
    let taxonomy = generate(
        TaxonomyKind::Amazon,
        GenOptions { seed: 42, scale: 0.10 },
    )
    .expect("valid options");

    println!(
        "Amazon-shaped taxonomy: {} entities, {} levels",
        taxonomy.len(),
        taxonomy.num_levels()
    );

    // What does truncation alone buy? (Structure-only dry run.)
    let truncated = taxonomy.truncate_below(4);
    println!(
        "truncating below level 4 keeps {} nodes, removes {} ({}% saving)\n",
        truncated.taxonomy.len(),
        taxonomy.len() - truncated.taxonomy.len(),
        100 * (taxonomy.len() - truncated.taxonomy.len()) / taxonomy.len()
    );

    // Now the full hybrid pipeline, per candidate replacement model.
    let zoo = ModelZoo::default_zoo();
    let config = CaseStudyConfig {
        cutoff_level: 4,
        products_per_concept: 10,
        sample_cap: Some(150),
        seed: 42,
    };
    println!(
        "{:<12} {:>10} {:>8} {:>8}   verdict",
        "model", "saving", "prec", "recall"
    );
    for id in [ModelId::Llama2_70b, ModelId::Gpt4, ModelId::Llama2_7b, ModelId::FlanT5_11b] {
        let model = zoo.get(id).expect("zoo covers all models");
        let study = CaseStudy::new(&taxonomy, TaxonomyKind::Amazon, config);
        let result = study.run(model.as_ref());
        let verdict = if result.precision > 0.7 && result.recall > 0.7 {
            "ship it"
        } else if result.precision > 0.5 && result.recall > 0.5 {
            "needs fine-tuning"
        } else {
            "keep the taxonomy"
        };
        println!(
            "{:<12} {:>9.1}% {:>8.3} {:>8.3}   {verdict}",
            id.to_string(),
            result.cost_saving * 100.0,
            result.precision,
            result.recall
        );
    }
    println!("\npaper reference (Llama-2-70B, full Amazon): 59% saving, precision 0.713, recall 0.792");
}
