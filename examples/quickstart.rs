//! Quickstart: generate a benchmark taxonomy, build its Hard dataset,
//! evaluate two models, and print overall + per-level metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use taxoglimpse::prelude::*;

fn main() {
    // 1. A synthetic stand-in for the eBay shopping taxonomy with the
    //    exact Table-1 shape (13 trees, 595 entities, 3 levels).
    let taxonomy = generate(TaxonomyKind::Ebay, GenOptions::default()).expect("valid options");
    println!(
        "taxonomy: {} — {} entities over {} levels, {} trees",
        TaxonomyKind::Ebay,
        taxonomy.len(),
        taxonomy.num_levels(),
        taxonomy.roots().len()
    );

    // 2. The Hard dataset: positives + uncle negatives, Cochran-sampled
    //    per level exactly like the paper's §2.2.
    let dataset = DatasetBuilder::new(&taxonomy, TaxonomyKind::Ebay, 42)
        .build(QuestionDataset::Hard)
        .expect("eBay has probe levels");
    println!("dataset: {} questions across {} levels", dataset.len(), dataset.levels.len());

    // A taste of what the models see:
    let sample = dataset.questions().next().expect("nonempty dataset");
    println!(
        "sample question: {}",
        taxoglimpse::core::templates::render_question(sample, Default::default())
    );

    // 3. Evaluate GPT-4 and Llama-2-7B (simulated, calibrated on the
    //    paper's published results) through the unified Workload API.
    let zoo = ModelZoo::default_zoo();
    let runner = WorkloadRunner::default();
    let workload = QaWorkload::new(QuestionDataset::Hard);
    let cx = WorkloadContext::new(&taxonomy, TaxonomyKind::Ebay, 42);
    for id in [ModelId::Gpt4, ModelId::Llama2_7b] {
        let model = zoo.get(id).expect("zoo covers all models");
        let report = runner.run(&workload, model.as_ref(), &cx).expect("eBay has probe levels");
        println!("\n{} on eBay hard (zero-shot):", report.model);
        println!("  overall: {}", report.overall);
        for level in &report.by_level {
            println!(
                "  level {} -> {}: A={:.3} M={:.3}",
                level.child_level,
                level.child_level - 1,
                level.metrics.accuracy(),
                level.metrics.miss_rate()
            );
        }
    }

    // 4. Serving faults? Wrap any model in the deterministic fault
    //    injector: the evaluator retries transient errors, scores what
    //    still fails as Failed, and reports availability alongside
    //    accuracy — no crash, no lost report.
    let flaky = FaultInjector::new(SimulatedLlm::new(ModelId::Gpt4), FaultPlan::uniform(7, 0.2));
    let degraded = runner.run(&workload, &flaky, &cx).expect("eBay has probe levels");
    println!(
        "\nGPT-4 behind a 20% fault injector: A={:.3}, availability {:.1}%",
        degraded.overall.accuracy(),
        degraded.overall.availability() * 100.0
    );
}
