//! Online serving: offer a mixed tenant fleet against the model zoo
//! through the virtual-time serving loop — dynamic batching, admission
//! control, and per-tenant accounting — then print tail latencies from
//! the log-scale histogram. Entirely deterministic: same seed, same
//! report, down to the event-trace digest.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use std::sync::Arc;
use taxoglimpse::prelude::*;

fn main() {
    // 1. A question pool for the tenants to draw from: the eBay Hard
    //    dataset over a half-scale synthetic taxonomy.
    let taxonomy =
        generate(TaxonomyKind::Ebay, GenOptions { seed: 42, scale: 0.5 }).expect("valid options");
    let dataset = DatasetBuilder::new(&taxonomy, TaxonomyKind::Ebay, 42)
        .sample_cap(Some(100))
        .build(QuestionDataset::Hard)
        .expect("eBay has probe levels");
    let questions: Vec<_> = dataset.questions().cloned().collect();

    // 2. One serving lane per model, each the full production tower:
    //    fault injection over a private response cache over the
    //    calibrated simulated model.
    let stacks: Vec<Box<dyn LanguageModel>> = [ModelId::Gpt4, ModelId::Gpt35, ModelId::Llama2_7b]
        .iter()
        .map(|&id| {
            let base = Arc::new(SimulatedLlm::with_seed(id, 42));
            let plan = FaultPlan::uniform(7, 0.05).with_retry_after_s(0.02);
            Box::new(FaultInjector::new(CachedModel::new(base), plan)) as Box<dyn LanguageModel>
        })
        .collect();
    let lanes: Vec<&dyn LanguageModel> = stacks.iter().map(|b| b.as_ref()).collect();

    // 3. The mixed fleet: six steady Poisson tenants, one bursty, one
    //    abusive (offers far over its admission allowance), over a
    //    2-second virtual horizon. Retry backoff and breaker cooldowns
    //    are tuned to serving scale — the batch-job defaults (0.5 s
    //    backoff base, 30 s cooldown) would dominate every latency.
    let resilience = ResiliencePolicy::default()
        .with_backoff(BackoffPolicy::default().with_base_s(0.01).with_max_s(0.1))
        .with_breaker(BreakerPolicy::default().with_cooldown_s(0.5).with_fast_fail_s(0.001));
    let traffic = TrafficConfig::mixed_fleet(7, 2_000.0, 2.0);
    let runner = WorkloadRunner::builder().with_resilience(resilience).build();
    let config = runner
        .serve_config()
        .with_batch_deadline_s(0.01)
        .with_queue_capacity(128);
    let report = run_serve(&lanes, &questions, &traffic, &config);

    println!(
        "served {} arrivals over {:.1}s virtual: {} admitted, {} completed, {} failed",
        report.arrivals, report.horizon_s, report.admitted, report.completed, report.failed
    );
    println!(
        "shed {:.1}% (rate-limited {}, overload {}, queue-full {}), sustained {:.0} q/s",
        report.shed_rate() * 100.0,
        report.shed.rate_limited,
        report.shed.overload,
        report.shed.queue_full,
        report.sustained_qps()
    );
    println!(
        "batching: {} batches, mean occupancy {:.1}, max {}",
        report.batches,
        report.mean_occupancy(),
        report.occupancy_max
    );

    // 4. Tail latencies from the fixed-bucket log-scale histogram —
    //    the same estimator BENCH_serve.json records.
    let mut histogram = LatencyHistogram::new();
    histogram.record_all(&report.latencies);
    println!(
        "latency: p50 {:.2} ms, p99 {:.2} ms, p99.9 {:.2} ms over {} samples",
        histogram.p50() * 1e3,
        histogram.p99() * 1e3,
        histogram.p999() * 1e3,
        histogram.count()
    );

    // 5. Per-tenant accounting: the abusive tenant is shed by its
    //    token bucket without touching anyone else's latency.
    println!("\nper-tenant:");
    for tenant in &report.tenants {
        println!(
            "  {:<10} offered {:>5}, admitted {:>5}, shed {:>5}, completed {:>5}",
            tenant.name,
            tenant.arrivals,
            tenant.admitted,
            tenant.shed.total(),
            tenant.completed
        );
    }

    println!("\ntrace digest: {:016x} ({} events)", report.trace_digest, report.trace_events);
}
