//! Model selection under a budget — the decision the paper's
//! "industrial users" actually face: which model handles *your* domain's
//! taxonomy questions best per dollar (or GPU-hour)?
//!
//! The pipeline: evaluate candidate models on the domain's hard dataset
//! in parallel, rank them with confidence intervals, price the workload
//! through the serving layer, and print a quality-vs-cost decision
//! table.
//!
//! ```text
//! cargo run --release --example model_selection [-- icd-10-cm]
//! ```

use taxoglimpse::llm::api::ApiClient;
use taxoglimpse::prelude::*;
use taxoglimpse::report::leaderboard::{leaderboard, render};

fn main() {
    let kind: TaxonomyKind = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "icd-10-cm".into())
        .parse()
        .expect("known taxonomy");
    let monthly_queries = 1_000_000u64;

    let taxonomy = generate(kind, GenOptions { seed: 42, scale: 1.0 }).expect("valid options");
    let dataset = DatasetBuilder::new(&taxonomy, kind, 42)
        .build(QuestionDataset::Hard)
        .expect("probe levels exist");
    println!(
        "domain: {kind} — {} entities; calibration set: {} hard questions\n",
        taxonomy.len(),
        dataset.len()
    );

    // 1. Quality: parallel evaluation of the candidates.
    let candidates = [
        ModelId::Gpt4,
        ModelId::Gpt35,
        ModelId::Claude3,
        ModelId::Llama3_8b,
        ModelId::Llama2_70b,
        ModelId::FlanT5_11b,
        ModelId::Llms4Ol,
    ];
    let zoo = ModelZoo::default_zoo();
    let arcs: Vec<_> = candidates.iter().map(|&id| zoo.get(id).expect("zoo")).collect();
    let models: Vec<&dyn LanguageModel> = arcs.iter().map(|m| m.as_ref() as &dyn LanguageModel).collect();
    let reports = WorkloadRunner::default()
        .run_cross(&QaWorkload::new(QuestionDataset::Hard), &models, &[WorkloadContext::new(&taxonomy, kind, 42)])
        .expect("probe levels exist");
    println!("{}", render(&leaderboard(&reports)));

    // 2. Cost: price a production month through the serving layer.
    println!("cost of {monthly_queries} queries/month (avg 30 prompt + 8 completion tokens):\n");
    println!("{:<12} {:>14} {:>16}", "model", "monthly USD", "or GPU-hours");
    for &id in &candidates {
        let client = ApiClient::new(SimulatedLlm::new(id));
        let usd = client.estimate_cost(monthly_queries, 30.0, 8.0);
        let gpu_hours = taxoglimpse::llm::scalability::footprint(id)
            .map(|f| f.seconds_per_question * monthly_queries as f64 / 3600.0);
        match (usd > 0.0, gpu_hours) {
            (true, _) => println!("{:<12} {:>13.0}$ {:>16}", id.to_string(), usd, "-"),
            (false, Some(h)) => println!("{:<12} {:>14} {:>15.0}h", id.to_string(), "-", h),
            _ => println!("{:<12} {:>14} {:>16}", id.to_string(), "-", "-"),
        }
    }

    // 3. The verdict, paper-style.
    let board = leaderboard(&reports);
    let best = &board[0];
    println!(
        "\nbest quality: {} (A = {:.3}); if its serving cost is prohibitive, the first\n\
         self-hosted entry below it on the board is the paper's recommended trade-off —\n\
         and for specialized domains, keep the tree (Finding 1).",
        best.model, best.macro_accuracy
    );
}
