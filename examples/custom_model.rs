//! Plugging your own model into the benchmark: implement
//! [`LanguageModel`] and the whole harness — datasets, prompting,
//! parsing, metrics — works unchanged.
//!
//! The custom model here is an embarrassingly simple *surface-form
//! baseline*: answer Yes iff the child and candidate names share enough
//! character trigrams. On name-overlapping taxonomies (OAE, NCBI
//! species level) it is surprisingly competitive — which is exactly the
//! paper's point about why LLMs do well there.
//!
//! ```text
//! cargo run --release --example custom_model
//! ```

use taxoglimpse::core::question::QuestionBody;
use taxoglimpse::llm::knowledge::trigram_similarity;
use taxoglimpse::prelude::*;

/// Yes iff trigram similarity clears a threshold; never abstains.
struct SurfaceBaseline {
    threshold: f64,
}

impl LanguageModel for SurfaceBaseline {
    fn name(&self) -> &str {
        "trigram-baseline"
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        let text = match &query.question.body {
            QuestionBody::TrueFalse { candidate, .. } => {
                if trigram_similarity(&query.question.child, candidate) >= self.threshold {
                    "Yes.".to_owned()
                } else {
                    "No.".to_owned()
                }
            }
            QuestionBody::Mcq { options, .. } => {
                let best = options
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        trigram_similarity(&query.question.child, a.1)
                            .total_cmp(&trigram_similarity(&query.question.child, b.1))
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                format!("{})", (b'A' + best as u8) as char)
            }
        };
        Ok(Response::new(text))
    }
}

fn main() {
    let baseline = SurfaceBaseline { threshold: 0.18 };
    let zoo = ModelZoo::default_zoo();
    let gpt4 = zoo.get(ModelId::Gpt4).expect("zoo covers all models");
    let evaluator = Evaluator::new(EvalConfig::default());

    println!(
        "{:<12} {:>18} {:>12}",
        "taxonomy", "trigram-baseline", "GPT-4"
    );
    for (kind, scale) in [
        (TaxonomyKind::Oae, 0.3),
        (TaxonomyKind::Ncbi, 0.003),
        (TaxonomyKind::Glottolog, 0.2),
        (TaxonomyKind::Ebay, 1.0),
    ] {
        let taxonomy = generate(kind, GenOptions { seed: 42, scale }).expect("valid options");
        let dataset = DatasetBuilder::new(&taxonomy, kind, 42)
            .sample_cap(Some(150))
            .build(QuestionDataset::Hard)
            .expect("probe levels exist");
        let ours = evaluator.run(&baseline, &dataset);
        let theirs = evaluator.run(gpt4.as_ref(), &dataset);
        println!(
            "{:<12} {:>18.3} {:>12.3}",
            kind.to_string(),
            ours.overall.accuracy(),
            theirs.overall.accuracy()
        );
    }
    println!(
        "\nthe baseline shines exactly where names overlap (OAE) and collapses where they don't \
         (Glottolog) — the paper's surface-form story, measurable in one trait impl."
    );
}
