//! Plugging your own model into the benchmark: implement
//! [`LanguageModel`] and the whole harness — datasets, prompting,
//! parsing, metrics — works unchanged.
//!
//! The custom model here is an embarrassingly simple *surface-form
//! baseline*: answer Yes iff the child and candidate names share enough
//! character trigrams. On name-overlapping taxonomies (OAE, NCBI
//! species level) it is surprisingly competitive — which is exactly the
//! paper's point about why LLMs do well there.
//!
//! ```text
//! cargo run --release --example custom_model
//! ```

use taxoglimpse::core::question::QuestionBody;
use taxoglimpse::llm::knowledge::trigram_similarity;
use taxoglimpse::prelude::*;

/// Yes iff trigram similarity clears a threshold; never abstains.
struct SurfaceBaseline {
    threshold: f64,
}

/// The option letter whose text is most trigram-similar to `child`.
fn pick_most_similar(child: &str, options: &[String]) -> String {
    let best = options
        .iter()
        .enumerate()
        .max_by(|a, b| {
            trigram_similarity(child, a.1).total_cmp(&trigram_similarity(child, b.1))
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    format!("{})", (b'A' + best as u8) as char)
}

impl LanguageModel for SurfaceBaseline {
    fn name(&self) -> &str {
        "trigram-baseline"
    }

    fn answer(&self, query: &Query<'_>) -> Result<Response, ModelError> {
        let text = match &query.question.body {
            QuestionBody::TrueFalse { candidate, .. } => {
                if trigram_similarity(&query.question.child, candidate) >= self.threshold {
                    "Yes.".to_owned()
                } else {
                    "No.".to_owned()
                }
            }
            QuestionBody::Mcq { options, .. } => pick_most_similar(&query.question.child, &options[..]),
            QuestionBody::Sibling { options, .. } => {
                pick_most_similar(&query.question.child, options)
            }
        };
        Ok(Response::new(text))
    }
}

fn main() {
    let baseline = SurfaceBaseline { threshold: 0.18 };
    let zoo = ModelZoo::default_zoo();
    let gpt4 = zoo.get(ModelId::Gpt4).expect("zoo covers all models");
    let runner = WorkloadRunner::default();
    let workload = QaWorkload::new(QuestionDataset::Hard).with_sample_cap(Some(150));

    println!(
        "{:<12} {:>18} {:>12}",
        "taxonomy", "trigram-baseline", "GPT-4"
    );
    for (kind, scale) in [
        (TaxonomyKind::Oae, 0.3),
        (TaxonomyKind::Ncbi, 0.003),
        (TaxonomyKind::Glottolog, 0.2),
        (TaxonomyKind::Ebay, 1.0),
    ] {
        let taxonomy = generate(kind, GenOptions { seed: 42, scale }).expect("valid options");
        let cx = WorkloadContext::new(&taxonomy, kind, 42);
        let reports = runner
            .run_cross(&workload, &[&baseline, gpt4.as_ref()], &[cx])
            .expect("probe levels exist");
        println!(
            "{:<12} {:>18.3} {:>12.3}",
            kind.to_string(),
            reports[0].overall.accuracy(),
            reports[1].overall.accuracy()
        );
    }
    println!(
        "\nthe baseline shines exactly where names overlap (OAE) and collapses where they don't \
         (Glottolog) — the paper's surface-form story, measurable in one trait impl."
    );
}
