//! Reproduce the paper's Example 1 interactively: walk one root-to-leaf
//! chain of the Glottolog-shaped taxonomy, asking a model "Is <child> a
//! type of <parent>?" at every level, then show the per-level accuracy
//! curve that generalizes the anecdote (Figure 3(f)).
//!
//! ```text
//! cargo run --release --example level_probe [-- GPT-4]
//! ```

use taxoglimpse::core::eval::score;
use taxoglimpse::core::parse::parse_tf;
use taxoglimpse::core::question::{Question, QuestionBody};
use taxoglimpse::core::templates::render_question;
use taxoglimpse::prelude::*;

fn main() {
    let model_name = std::env::args().nth(1).unwrap_or_else(|| "GPT-4".to_owned());
    let zoo = ModelZoo::default_zoo();
    let model = zoo
        .by_name(&model_name)
        .unwrap_or_else(|| panic!("unknown model {model_name:?}"));

    let kind = TaxonomyKind::Glottolog;
    let taxonomy = generate(kind, GenOptions { seed: 42, scale: 0.3 }).expect("valid options");

    // Pick the deepest leaf and walk its chain from the root, exactly
    // like the paper's Hailu → Hakka-Chinese → … → Sino-Tibetan example.
    let deepest = taxonomy
        .ids()
        .max_by_key(|&id| taxonomy.level(id))
        .expect("nonempty taxonomy");
    let chain = taxonomy.chain_from_root(deepest);
    println!(
        "probing chain: {}\n",
        chain.iter().map(|&n| taxonomy.name(n)).collect::<Vec<_>>().join(" ← ")
    );

    for pair in chain.windows(2) {
        let (parent, child) = (pair[0], pair[1]);
        let question = Question {
            id: taxonomy.level(child) as u64,
            taxonomy: kind,
            child: taxonomy.name(child).to_owned(),
            child_level: taxonomy.level(child),
            parent_level: taxonomy.level(parent),
            true_parent: taxonomy.name(parent).to_owned(),
            instance_typing: false,
            body: QuestionBody::TrueFalse {
                candidate: taxonomy.name(parent).to_owned(),
                expected_yes: true,
                negative: None,
            },
        };
        let prompt = render_question(&question, Default::default());
        let query = Query::new(&prompt, &question, PromptSetting::ZeroShot);
        let (text, outcome) = match model.answer(&query) {
            Ok(response) => {
                let outcome = score(&question, parse_tf(&response.text));
                (response.text, outcome)
            }
            Err(error) => (format!("[{error}]"), Outcome::Failed),
        };
        println!("L{} Q: {prompt}", question.child_level);
        println!("   {}: {text}   [{outcome:?}]\n", model.name());
    }

    // The anecdote, generalized: the full per-level accuracy curve,
    // through the unified Workload API.
    let report = WorkloadRunner::default()
        .run(
            &QaWorkload::new(QuestionDataset::Hard).with_sample_cap(Some(150)),
            model.as_ref(),
            &WorkloadContext::new(&taxonomy, kind, 42),
        )
        .expect("probe levels exist");
    println!("{} per-level accuracy on {} (hard, zero-shot):", model.name(), kind);
    for (level, accuracy) in report.accuracy_by_level() {
        let bar = "#".repeat((accuracy * 40.0).round() as usize);
        println!("  L{level}: {accuracy:.3} {bar}");
    }
}
